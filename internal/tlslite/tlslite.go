// Package tlslite implements a miniature TLS-style session protocol with
// RSA key exchange, sufficient to demonstrate the security consequence at
// the heart of the paper (Section 2.1): when a server's RSA key is
// factorable, an attacker who merely *records* traffic to a server that
// negotiates RSA key exchange can decrypt every session offline — no
// man-in-the-middle needed. 74% of the vulnerable devices in the paper's
// April 2016 data supported only RSA key exchange.
//
// The protocol (all messages length-prefixed with a 4-byte big-endian
// size):
//
//	C -> S  ClientHello   (offered suites)
//	S -> C  ServerHello   (chosen suite, DER certificate)
//	C -> S  KeyExchange   (premaster secret encrypted to the server key)
//	C <-> S Records       (XOR-keystream "encryption" keyed from the
//	                      premaster — a stand-in cipher; the attack is
//	                      about key exchange, not the record layer)
//
// Forward-secret suites are deliberately not implemented beyond
// negotiation: a server that requires ECDHE simply refuses RSA key
// exchange, which is all the analysis needs.
package tlslite

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"

	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/weakrsa"
)

// Suite identifiers, mirroring devices.SuiteRSA / SuiteECDHE.
const (
	SuiteRSA   = "RSA"
	SuiteECDHE = "ECDHE"
)

// maxMsg bounds a single protocol message.
const maxMsg = 1 << 20

// ErrNoCommonSuite is returned when negotiation fails.
var ErrNoCommonSuite = errors.New("tlslite: no common cipher suite")

// writeMsg writes a length-prefixed message.
func writeMsg(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readMsg reads a length-prefixed message.
func readMsg(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxMsg {
		return nil, fmt.Errorf("tlslite: message of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Session is an established connection: both ends hold the record keys.
type Session struct {
	conn io.ReadWriter
	// Suite is the negotiated key exchange.
	Suite string
	// PeerCert is the certificate presented by the server (client side
	// only).
	PeerCert         *certs.Certificate
	sendKey, recvKey []byte
	sendCtr, recvCtr uint64
}

// keystream derives a per-record XOR pad.
func keystream(key []byte, ctr uint64, n int) []byte {
	out := make([]byte, 0, n)
	var block [8]byte
	for i := uint64(0); len(out) < n; i++ {
		binary.BigEndian.PutUint64(block[:], ctr<<20|i)
		h := sha256.New()
		h.Write(key)
		h.Write(block[:])
		out = append(out, h.Sum(nil)...)
	}
	return out[:n]
}

// Send encrypts and writes one record.
func (s *Session) Send(plaintext []byte) error {
	pad := keystream(s.sendKey, s.sendCtr, len(plaintext))
	s.sendCtr++
	ct := make([]byte, len(plaintext))
	for i := range plaintext {
		ct[i] = plaintext[i] ^ pad[i]
	}
	return writeMsg(s.conn, ct)
}

// Recv reads and decrypts one record.
func (s *Session) Recv() ([]byte, error) {
	ct, err := readMsg(s.conn)
	if err != nil {
		return nil, err
	}
	pad := keystream(s.recvKey, s.recvCtr, len(ct))
	s.recvCtr++
	for i := range ct {
		ct[i] ^= pad[i]
	}
	return ct, nil
}

// deriveKeys splits record keys from the premaster secret.
func deriveKeys(premaster []byte) (clientWrite, serverWrite []byte) {
	cw := sha256.Sum256(append([]byte("client write|"), premaster...))
	sw := sha256.Sum256(append([]byte("server write|"), premaster...))
	return cw[:], sw[:]
}

// ServerConfig holds the server identity.
type ServerConfig struct {
	Cert *certs.Certificate
	Key  *weakrsa.PrivateKey
	// Suites the server accepts; nil means {RSA, ECDHE}.
	Suites []string
}

func (c *ServerConfig) suites() []string {
	if len(c.Suites) == 0 {
		return []string{SuiteRSA, SuiteECDHE}
	}
	return c.Suites
}

// Handshake performs the server side over conn.
func (c *ServerConfig) Handshake(conn io.ReadWriter) (*Session, error) {
	helloRaw, err := readMsg(conn)
	if err != nil {
		return nil, err
	}
	offered := splitList(helloRaw)
	suite, ok := chooseSuite(offered, c.suites())
	if !ok {
		writeMsg(conn, []byte("alert:no common suite"))
		return nil, ErrNoCommonSuite
	}
	if suite != SuiteRSA {
		// The simulation only carries RSA key exchange to completion;
		// negotiating ECDHE tells the peer to go elsewhere.
		writeMsg(conn, []byte("alert:ECDHE unimplemented in tlslite"))
		return nil, fmt.Errorf("tlslite: negotiated %s, which this substrate does not carry further", suite)
	}
	der, err := c.Cert.Marshal()
	if err != nil {
		return nil, err
	}
	if err := writeMsg(conn, append([]byte("hello:"+suite+":"), der...)); err != nil {
		return nil, err
	}
	encPre, err := readMsg(conn)
	if err != nil {
		return nil, err
	}
	ct := new(big.Int).SetBytes(encPre)
	pre, err := c.Key.Decrypt(ct)
	if err != nil {
		return nil, err
	}
	cw, sw := deriveKeys(pre.Bytes())
	return &Session{conn: conn, Suite: suite, sendKey: sw, recvKey: cw}, nil
}

// ClientConfig holds client preferences.
type ClientConfig struct {
	// Suites offered, in preference order; nil means {RSA}.
	Suites []string
	// Rand supplies the premaster secret; required.
	Rand io.Reader
}

// Handshake performs the client side over conn.
func (c *ClientConfig) Handshake(conn io.ReadWriter) (*Session, error) {
	offered := c.Suites
	if len(offered) == 0 {
		offered = []string{SuiteRSA}
	}
	if err := writeMsg(conn, joinList(offered)); err != nil {
		return nil, err
	}
	resp, err := readMsg(conn)
	if err != nil {
		return nil, err
	}
	if len(resp) > 6 && string(resp[:6]) == "alert:" {
		return nil, fmt.Errorf("tlslite: server alert: %s", resp[6:])
	}
	const prefix = "hello:" + SuiteRSA + ":"
	if len(resp) < len(prefix) || string(resp[:len(prefix)]) != prefix {
		return nil, errors.New("tlslite: malformed server hello")
	}
	cert, err := certs.Parse(resp[len(prefix):])
	if err != nil {
		return nil, err
	}
	// Premaster: 32 random bytes, reduced below N for textbook RSA.
	pre := make([]byte, 32)
	if c.Rand == nil {
		return nil, errors.New("tlslite: ClientConfig.Rand is required")
	}
	if _, err := io.ReadFull(c.Rand, pre); err != nil {
		return nil, err
	}
	m := new(big.Int).SetBytes(pre)
	m.Mod(m, cert.N)
	pub := weakrsa.PublicKey{N: cert.N, E: cert.E}
	ct, err := pub.Encrypt(m)
	if err != nil {
		return nil, err
	}
	if err := writeMsg(conn, ct.Bytes()); err != nil {
		return nil, err
	}
	cw, sw := deriveKeys(m.Bytes())
	return &Session{conn: conn, Suite: SuiteRSA, PeerCert: cert, sendKey: cw, recvKey: sw}, nil
}

func splitList(raw []byte) []string {
	var out []string
	start := 0
	for i := 0; i <= len(raw); i++ {
		if i == len(raw) || raw[i] == ',' {
			if i > start {
				out = append(out, string(raw[start:i]))
			}
			start = i + 1
		}
	}
	return out
}

func joinList(items []string) []byte {
	out := []byte{}
	for i, s := range items {
		if i > 0 {
			out = append(out, ',')
		}
		out = append(out, s...)
	}
	return out
}

func chooseSuite(offered, accepted []string) (string, bool) {
	for _, o := range offered {
		for _, a := range accepted {
			if o == a {
				return o, true
			}
		}
	}
	return "", false
}

package tlslite

import (
	"errors"
	"io"
	"math/big"
	"sync"

	"github.com/factorable/weakkeys/internal/weakrsa"
)

// Tap records the bytes flowing in both directions of a connection, the
// way a network observer on the path would. Wrap each side's transport
// with TapConn and hand the Tap to an Eavesdropper afterwards.
type Tap struct {
	mu sync.Mutex
	// toServer and toClient are the raw captured byte streams.
	toServer, toClient []byte
}

// TapConn wraps conn so that writes are recorded as traffic toward the
// peer and reads as traffic from it. Use on the CLIENT side transport:
// writes are client->server.
func (t *Tap) TapConn(conn io.ReadWriter) io.ReadWriter {
	return &tappedConn{conn: conn, tap: t}
}

type tappedConn struct {
	conn io.ReadWriter
	tap  *Tap
}

func (c *tappedConn) Write(p []byte) (int, error) {
	n, err := c.conn.Write(p)
	c.tap.mu.Lock()
	c.tap.toServer = append(c.tap.toServer, p[:n]...)
	c.tap.mu.Unlock()
	return n, err
}

func (c *tappedConn) Read(p []byte) (int, error) {
	n, err := c.conn.Read(p)
	c.tap.mu.Lock()
	c.tap.toClient = append(c.tap.toClient, p[:n]...)
	c.tap.mu.Unlock()
	return n, err
}

// Transcript is a decrypted session as reconstructed by the attacker.
type Transcript struct {
	// ClientRecords and ServerRecords are the plaintext records in each
	// direction.
	ClientRecords [][]byte
	ServerRecords [][]byte
}

// Decrypt performs the paper's passive attack: given a full packet
// capture of one RSA-key-exchange session and the server's FACTORED
// private key, it recovers the premaster secret and decrypts every
// record in both directions. No interaction with either endpoint occurs.
func (t *Tap) Decrypt(serverKey *weakrsa.PrivateKey) (*Transcript, error) {
	t.mu.Lock()
	toServer := append([]byte(nil), t.toServer...)
	toClient := append([]byte(nil), t.toClient...)
	t.mu.Unlock()

	sr := &sliceReader{data: toServer}
	cr := &sliceReader{data: toClient}

	// client->server: ClientHello, then the encrypted premaster.
	if _, err := readMsg(sr); err != nil {
		return nil, errors.New("tlslite: capture missing client hello")
	}
	// server->client: ServerHello (skip).
	if _, err := readMsg(cr); err != nil {
		return nil, errors.New("tlslite: capture missing server hello")
	}
	encPre, err := readMsg(sr)
	if err != nil {
		return nil, errors.New("tlslite: capture missing key exchange")
	}
	pre, err := serverKey.Decrypt(new(big.Int).SetBytes(encPre))
	if err != nil {
		return nil, err
	}
	cw, sw := deriveKeys(pre.Bytes())

	out := &Transcript{}
	decryptAll := func(r *sliceReader, key []byte) ([][]byte, error) {
		var records [][]byte
		for ctr := uint64(0); ; ctr++ {
			ct, err := readMsg(r)
			if err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
					return records, nil
				}
				return records, err
			}
			pad := keystream(key, ctr, len(ct))
			for i := range ct {
				ct[i] ^= pad[i]
			}
			records = append(records, ct)
		}
	}
	if out.ClientRecords, err = decryptAll(sr, cw); err != nil {
		return nil, err
	}
	if out.ServerRecords, err = decryptAll(cr, sw); err != nil {
		return nil, err
	}
	return out, nil
}

// sliceReader is a minimal io.Reader over captured bytes.
type sliceReader struct {
	data []byte
	off  int
}

func (s *sliceReader) Read(p []byte) (int, error) {
	if s.off >= len(s.data) {
		return 0, io.EOF
	}
	n := copy(p, s.data[s.off:])
	s.off += n
	return n, nil
}

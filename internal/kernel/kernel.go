// Package kernel is the shared execution engine for level-structured
// big-integer work: product-tree levels, remainder-tree levels, GCD
// sweeps. Every math layer of the study — prodtree, batchgcd, distgcd,
// keycheck — schedules its per-level loops here instead of spawning its
// own goroutines.
//
// Why one engine instead of per-call goroutines:
//
//   - One persistent worker pool, sized to GOMAXPROCS at creation, is
//     shared by every caller. k concurrent distgcd nodes or parallel
//     keycheck shard builds used to each spin up a GOMAXPROCS-wide
//     goroutine set, oversubscribing the machine exactly when load was
//     highest; on the shared pool total math concurrency stays bounded.
//   - Work is claimed in chunks off an atomic cursor, and cancellation
//     is checked per chunk. A cancelled 1M-leaf tree build used to run
//     to the end of its level (minutes at paper scale); now it stops
//     within one chunk and drains the rest without executing them.
//   - Each executing goroutine owns a reusable big.Int scratch arena,
//     so Mul/Mod/GCD temporaries are recycled across chunks and tree
//     levels instead of allocated per node.
//
// Nesting is safe by construction: Run uses a caller-runs discipline —
// the submitting goroutine claims chunks of its own job alongside the
// pool workers, so a job submitted from inside a worker (for example a
// keycheck shard build whose product tree schedules its levels here)
// always makes progress even when every pool worker is busy. Blocking
// only ever points at strictly nested jobs, so there is no cycle and no
// deadlock; the worst case degrades to the caller executing its whole
// job inline.
//
// The process-wide engine is Default(). Callers that need a different
// shape — the GOMAXPROCS=1 serial baseline in benchmarks, the
// bit-identical equivalence property tests — attach their own engine to
// a context with With; every math layer resolves its engine via
// FromContext, falling back to Default.
package kernel

import (
	"context"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/factorable/weakkeys/internal/telemetry"
)

const (
	// maxChunk caps the chunk size so cancellation latency and arena
	// footprint stay bounded on huge levels: a 1M-leaf level is ~1000
	// chunks, each an independent cancellation point.
	maxChunk = 1024
	// chunksPerWorker is the load-balancing target: enough chunks that a
	// slow worker sheds load to the others, few enough that the atomic
	// cursor is not contended.
	chunksPerWorker = 4
	// minParallel is the smallest n worth fanning out; below it the
	// caller runs the loop inline (upper tree levels are 1-3 nodes).
	minParallel = 4
)

// Engine owns a worker pool and schedules chunked loops onto it. Safe
// for concurrent use by any number of goroutines, including nested use
// from inside a running job.
type Engine struct {
	workers int
	recycle bool
	jobs    chan *job
	arenas  chan *Arena

	jobsN    atomic.Int64
	inlineN  atomic.Int64
	ops      atomic.Int64
	chunks   atomic.Int64
	waitNs   atomic.Int64
	arenaHit atomic.Int64
	arenaMis atomic.Int64
}

// Option configures an Engine at construction.
type Option func(*Engine)

// WithoutArenaReuse disables scratch recycling: every Arena.Get
// allocates a fresh big.Int, reproducing the pre-engine allocation
// behaviour. It exists for the gcdbench allocs/op comparison and for
// bisecting arena bugs; production engines never use it.
func WithoutArenaReuse() Option {
	return func(e *Engine) { e.recycle = false }
}

// New builds an engine with the given worker-pool width. workers is the
// total parallelism of one job: the submitting goroutine plus workers-1
// pool goroutines. workers <= 1 builds a purely inline engine (no pool
// goroutines at all), the serial baseline.
func New(workers int, opts ...Option) *Engine {
	if workers < 1 {
		workers = 1
	}
	e := &Engine{
		workers: workers,
		recycle: true,
		jobs:    make(chan *job, workers*chunksPerWorker),
		arenas:  make(chan *Arena, workers+2),
	}
	for _, opt := range opts {
		opt(e)
	}
	for i := 0; i < workers-1; i++ {
		go e.worker()
	}
	return e
}

var (
	defaultOnce   sync.Once
	defaultEngine *Engine
)

// Default returns the process-wide shared engine, created on first use
// and sized to GOMAXPROCS at that moment.
func Default() *Engine {
	defaultOnce.Do(func() {
		defaultEngine = New(runtime.GOMAXPROCS(0))
	})
	return defaultEngine
}

type ctxKey struct{}

// With returns a context carrying e; FromContext on the result returns
// e. It is how benchmarks and tests pin a specific engine (for example
// the 1-worker serial baseline) under call stacks that plumb only a
// context.
func With(ctx context.Context, e *Engine) context.Context {
	return context.WithValue(ctx, ctxKey{}, e)
}

// FromContext returns the engine attached with With, or Default().
func FromContext(ctx context.Context) *Engine {
	if e, ok := ctx.Value(ctxKey{}).(*Engine); ok && e != nil {
		return e
	}
	return Default()
}

// Workers returns the engine's total parallelism per job.
func (e *Engine) Workers() int { return e.workers }

// job is one Run invocation: a half-open index space claimed chunk by
// chunk off an atomic cursor by the caller and any free pool workers.
type job struct {
	ctx     context.Context
	f       func(i int, a *Arena)
	n       int
	chunk   int
	nchunks int64

	next      atomic.Int64 // next unclaimed chunk
	done      atomic.Int64 // chunks finished or abandoned
	cancelled atomic.Bool
	fin       chan struct{}
}

// Run executes f(i, arena) for every i in [0, n) on the pool, returning
// once all of them completed. The iteration order is unspecified and
// calls run concurrently; f must only touch index-disjoint state. The
// arena passed to f is private to the executing goroutine; values
// obtained from it are valid only until f returns and must never be
// stored into results (see Arena).
//
// ctx is checked between chunks: on cancellation the remaining chunks
// are drained without executing f and Run returns the context's error.
// Indices already claimed by workers finish first, so f is never still
// running after Run returns.
func (e *Engine) Run(ctx context.Context, n int, f func(i int, a *Arena)) error {
	if n <= 0 {
		return ctx.Err()
	}
	e.jobsN.Add(1)
	e.ops.Add(int64(n))
	chunk := e.chunkFor(n)
	// One debug event per job (not per op): an ingest's request ID rides
	// the context, so /debug/events can show which request drove which
	// kernel fan-out.
	telemetry.EventsFrom(ctx).Debug(ctx, "kernel job",
		slog.Int("ops", n),
		slog.Int("chunk", chunk),
		slog.Bool("inline", e.workers <= 1 || n < minParallel || n <= chunk))
	if e.workers <= 1 || n < minParallel || n <= chunk {
		return e.runInline(ctx, n, chunk, f)
	}
	j := &job{
		ctx:     ctx,
		f:       f,
		n:       n,
		chunk:   chunk,
		nchunks: int64((n + chunk - 1) / chunk),
		fin:     make(chan struct{}),
	}
	e.chunks.Add(j.nchunks)
	// Offer the job to as many pool workers as could usefully help; a
	// full channel just means they are busy and the caller-runs loop
	// below carries the job alone.
	offers := int64(e.workers - 1)
	if offers > j.nchunks-1 {
		offers = j.nchunks - 1
	}
	for i := int64(0); i < offers; i++ {
		select {
		case e.jobs <- j:
		default:
			i = offers // channel full; stop offering
		}
	}
	a := e.getArena()
	j.help(a)
	e.putArena(a)
	// The caller ran out of chunks to claim; wait for workers to finish
	// the chunks they hold. This tail wait is the pool-imbalance cost
	// surfaced as kernel_chunk_wait_seconds.
	t0 := time.Now()
	<-j.fin
	e.waitNs.Add(time.Since(t0).Nanoseconds())
	if j.cancelled.Load() {
		return ctx.Err()
	}
	return nil
}

// runInline executes the loop on the calling goroutine, still in chunk
// strides so cancellation granularity matches the pooled path.
func (e *Engine) runInline(ctx context.Context, n, chunk int, f func(i int, a *Arena)) error {
	e.inlineN.Add(1)
	a := e.getArena()
	defer e.putArena(a)
	for lo := 0; lo < n; lo += chunk {
		if err := ctx.Err(); err != nil {
			return err
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			f(i, a)
		}
		a.reset()
		e.chunks.Add(1)
	}
	return nil
}

// chunkFor picks the chunk size for an n-wide job.
func (e *Engine) chunkFor(n int) int {
	chunk := n / (e.workers * chunksPerWorker)
	if chunk < 1 {
		chunk = 1
	}
	if chunk > maxChunk {
		chunk = maxChunk
	}
	return chunk
}

// worker is one pool goroutine: it owns an arena for life and helps
// whatever jobs are offered.
func (e *Engine) worker() {
	a := newArena(e)
	for j := range e.jobs {
		j.help(a)
	}
}

// help claims and executes chunks of j until the cursor runs out. Both
// pool workers and the submitting goroutine run this; whoever finishes
// the last chunk closes fin.
func (j *job) help(a *Arena) {
	for {
		c := j.next.Add(1) - 1
		if c >= j.nchunks {
			return
		}
		if j.cancelled.Load() || j.ctx.Err() != nil {
			// Drain without executing: mark and fall through to the
			// completion accounting so Run still unblocks.
			j.cancelled.Store(true)
		} else {
			lo := int(c) * j.chunk
			hi := lo + j.chunk
			if hi > j.n {
				hi = j.n
			}
			for i := lo; i < hi; i++ {
				j.f(i, a)
			}
			a.reset()
		}
		if j.done.Add(1) == j.nchunks {
			close(j.fin)
		}
	}
}

// getArena hands out a scratch arena for one help/inline stint;
// putArena returns it so capacity is recycled across jobs and levels.
func (e *Engine) getArena() *Arena {
	select {
	case a := <-e.arenas:
		return a
	default:
		return newArena(e)
	}
}

func (e *Engine) putArena(a *Arena) {
	a.reset()
	select {
	case e.arenas <- a:
	default:
	}
}

// Close stops the pool goroutines. Only for engines that are done for
// good (tests); calling Run after or concurrently with Close panics.
// The Default engine is never closed.
func (e *Engine) Close() {
	close(e.jobs)
}

// Stats is a point-in-time snapshot of the engine's cost counters.
type Stats struct {
	// Workers is the engine's per-job parallelism.
	Workers int `json:"workers"`
	// Jobs counts Run invocations; InlineJobs the subset executed
	// entirely on the calling goroutine (small n or serial engine).
	Jobs       int64 `json:"jobs"`
	InlineJobs int64 `json:"inline_jobs"`
	// Ops is the total number of scheduled indices (one per tree node,
	// modulus, or sweep element).
	Ops int64 `json:"ops"`
	// Chunks is the number of work chunks executed; each is also a
	// cancellation checkpoint.
	Chunks int64 `json:"chunks"`
	// ChunkWait is the cumulative time submitters spent waiting for
	// pool workers to finish the final chunks of their jobs.
	ChunkWait time.Duration `json:"chunk_wait_ns"`
	// ArenaHits/ArenaMisses count scratch big.Int requests served from
	// an arena versus freshly allocated.
	ArenaHits   int64 `json:"arena_hits"`
	ArenaMisses int64 `json:"arena_misses"`
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Workers:     e.workers,
		Jobs:        e.jobsN.Load(),
		InlineJobs:  e.inlineN.Load(),
		Ops:         e.ops.Load(),
		Chunks:      e.chunks.Load(),
		ChunkWait:   time.Duration(e.waitNs.Load()),
		ArenaHits:   e.arenaHit.Load(),
		ArenaMisses: e.arenaMis.Load(),
	}
}

// Publish mirrors the engine counters into the registry as kernel_*
// gauges (nil-safe): kernel_workers, kernel_jobs, kernel_inline_jobs,
// kernel_ops, kernel_chunks, kernel_chunk_wait_seconds,
// kernel_arena_hits, kernel_arena_misses.
func (e *Engine) Publish(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	st := e.Stats()
	reg.Gauge("kernel_workers").Set(float64(st.Workers))
	reg.Gauge("kernel_jobs").Set(float64(st.Jobs))
	reg.Gauge("kernel_inline_jobs").Set(float64(st.InlineJobs))
	reg.Gauge("kernel_ops").Set(float64(st.Ops))
	reg.Gauge("kernel_chunks").Set(float64(st.Chunks))
	reg.Gauge("kernel_chunk_wait_seconds").Set(st.ChunkWait.Seconds())
	reg.Gauge("kernel_arena_hits").Set(float64(st.ArenaHits))
	reg.Gauge("kernel_arena_misses").Set(float64(st.ArenaMisses))
}

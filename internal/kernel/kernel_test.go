package kernel

import (
	"context"
	"math/big"
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		e := New(workers)
		for _, n := range []int{1, 2, 3, 4, 7, 100, 5000} {
			got := make([]int64, n)
			err := e.Run(context.Background(), n, func(i int, a *Arena) {
				z := a.Get()
				z.SetInt64(int64(i))
				z.Mul(z, z)
				atomic.AddInt64(&got[i], z.Int64())
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i := range got {
				if got[i] != int64(i)*int64(i) {
					t.Fatalf("workers=%d n=%d: index %d ran %v times / wrong value", workers, n, i, got[i])
				}
			}
		}
		e.Close()
	}
}

func TestRunZeroAndNegative(t *testing.T) {
	e := New(4)
	defer e.Close()
	for _, n := range []int{0, -3} {
		if err := e.Run(context.Background(), n, func(int, *Arena) {
			t.Fatal("f called for empty job")
		}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestNestedRun submits jobs from inside running jobs — the keycheck
// shard-build shape (outer fan-out over shards, inner product-tree
// levels) — and must neither deadlock nor lose indices.
func TestNestedRun(t *testing.T) {
	e := New(4)
	defer e.Close()
	const outer, inner = 6, 200
	var total atomic.Int64
	err := e.Run(context.Background(), outer, func(i int, _ *Arena) {
		err := e.Run(context.Background(), inner, func(j int, a *Arena) {
			z := a.Get()
			z.SetInt64(1)
			total.Add(z.Int64())
		})
		if err != nil {
			t.Errorf("inner run %d: %v", i, err)
		}
	})
	if err != nil {
		t.Fatalf("outer run: %v", err)
	}
	if got := total.Load(); got != outer*inner {
		t.Fatalf("nested runs executed %d of %d indices", got, outer*inner)
	}
}

// TestCancellationStopsWithinChunks proves per-chunk cancellation: a
// context cancelled by the very first index must abandon the bulk of a
// large job instead of running its level to completion.
func TestCancellationStopsWithinChunks(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := New(workers)
		ctx, cancel := context.WithCancel(context.Background())
		const n = 200000
		var ran atomic.Int64
		err := e.Run(ctx, n, func(i int, _ *Arena) {
			ran.Add(1)
			cancel()
		})
		if err == nil {
			t.Fatalf("workers=%d: cancelled run returned nil error", workers)
		}
		// Every chunk already claimed when cancel landed may finish;
		// with chunks capped at maxChunk that is far below n.
		if got := ran.Load(); got >= n/2 {
			t.Fatalf("workers=%d: %d of %d indices ran after cancellation", workers, got, n)
		}
		cancel()
		e.Close()
	}
}

func TestArenaRecyclesAcrossRuns(t *testing.T) {
	e := New(1)
	defer e.Close()
	for run := 0; run < 3; run++ {
		err := e.Run(context.Background(), 64, func(i int, a *Arena) {
			a.Get().SetInt64(int64(i))
			a.Get().SetInt64(int64(-i))
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.ArenaHits == 0 {
		t.Fatalf("no arena hits after repeated runs: %+v", st)
	}
	if st.Ops != 3*64 {
		t.Fatalf("ops = %d, want %d", st.Ops, 3*64)
	}
}

func TestWithoutArenaReuse(t *testing.T) {
	e := New(1, WithoutArenaReuse())
	defer e.Close()
	for run := 0; run < 2; run++ {
		if err := e.Run(context.Background(), 64, func(i int, a *Arena) {
			a.Get().SetInt64(int64(i))
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.ArenaHits != 0 {
		t.Fatalf("legacy engine recycled scratch: %+v", st)
	}
	if st.ArenaMisses != 2*64 {
		t.Fatalf("legacy engine misses = %d, want %d", st.ArenaMisses, 2*64)
	}
}

func TestFromContext(t *testing.T) {
	if FromContext(context.Background()) != Default() {
		t.Fatal("bare context did not resolve to the default engine")
	}
	e := New(2)
	defer e.Close()
	ctx := With(context.Background(), e)
	if FromContext(ctx) != e {
		t.Fatal("With-attached engine not returned by FromContext")
	}
}

// TestConcurrentSubmitters drives many goroutines through one engine at
// once — the distgcd many-nodes shape — under the race detector.
func TestConcurrentSubmitters(t *testing.T) {
	e := New(4)
	defer e.Close()
	const submitters, n = 8, 3000
	done := make(chan int64, submitters)
	for s := 0; s < submitters; s++ {
		go func(seed int64) {
			var sum atomic.Int64
			err := e.Run(context.Background(), n, func(i int, a *Arena) {
				z := a.Get()
				z.SetInt64(seed + int64(i))
				sum.Add(z.Int64())
			})
			if err != nil {
				t.Error(err)
			}
			done <- sum.Load()
		}(int64(s))
	}
	for s := 0; s < submitters; s++ {
		want := int64(s)*n + int64(n)*(n-1)/2
		got := <-done
		found := false
		for ss := 0; ss < submitters; ss++ {
			if got == int64(ss)*n+int64(n)*(n-1)/2 {
				found = true
			}
		}
		if !found {
			t.Fatalf("submitter sum %d matches no expected total (e.g. %d)", got, want)
		}
	}
}

func TestStatsAndPublish(t *testing.T) {
	e := New(2)
	defer e.Close()
	if err := e.Run(context.Background(), 100, func(i int, a *Arena) {
		a.Get().SetInt64(int64(i))
	}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Workers != 2 || st.Jobs != 1 || st.Ops != 100 || st.Chunks == 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	if st.ArenaHits+st.ArenaMisses != 100 {
		t.Fatalf("arena tally %d+%d does not cover 100 Gets", st.ArenaHits, st.ArenaMisses)
	}
	e.Publish(nil) // nil-safe
}

// TestArenaCapOverflow: Gets past arenaCap in one chunk still work,
// they just are not retained.
func TestArenaCapOverflow(t *testing.T) {
	e := New(1)
	defer e.Close()
	err := e.Run(context.Background(), 1, func(i int, a *Arena) {
		vals := make([]*big.Int, 0, arenaCap+10)
		for k := 0; k < arenaCap+10; k++ {
			v := a.Get()
			v.SetInt64(int64(k))
			vals = append(vals, v)
		}
		for k, v := range vals {
			if v.Int64() != int64(k) {
				t.Errorf("scratch %d clobbered within one invocation", k)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

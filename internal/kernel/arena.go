package kernel

import "math/big"

// arenaCap bounds how many scratch values one arena retains. Requests
// past the cap are served with fresh allocations that the arena does
// not keep, so a pathological chunk cannot pin unbounded memory.
const arenaCap = 4096

// Arena is a per-goroutine bag of reusable *big.Int scratch values.
// The engine hands one to each f invocation; Get returns a scratch
// value whose contents are unspecified — use only overwriting
// operations (Mul, Mod, Quo, GCD, Set, ...) on it.
//
// Lifetime contract: a value obtained from Get is valid only until the
// current f invocation returns. The engine recycles it for later
// indices, chunks and tree levels, so storing an arena value into a
// result (a tree node, a returned divisor, ...) would let a later
// chunk scribble over it. Results must always be fresh allocations or
// copies (new(big.Int).Set(v)); the prodtree aliasing regression test
// enforces this for the tree builders.
//
// Arenas are not safe for concurrent use; the engine never shares one
// across goroutines.
type Arena struct {
	eng  *Engine
	ints []*big.Int
	next int

	// hit/miss are accumulated locally and flushed to the engine's
	// atomics on reset, keeping Get free of atomics on the hot path.
	hits, misses int64
}

func newArena(e *Engine) *Arena {
	return &Arena{eng: e}
}

// Get returns a scratch *big.Int with unspecified contents. Recycled
// values keep their grown backing arrays, which is the entire point:
// the second tree build's full-width temporaries land in storage the
// first one already paid for.
func (a *Arena) Get() *big.Int {
	if a == nil {
		return new(big.Int)
	}
	if a.eng.recycle && a.next < len(a.ints) {
		v := a.ints[a.next]
		a.next++
		a.hits++
		return v
	}
	a.misses++
	v := new(big.Int)
	if a.eng.recycle && len(a.ints) < arenaCap {
		a.ints = append(a.ints, v)
		a.next = len(a.ints)
	}
	return v
}

// reset recycles every handed-out value and flushes the hit/miss tally.
// Called by the engine between chunks; never by f.
func (a *Arena) reset() {
	if a.hits != 0 || a.misses != 0 {
		a.eng.arenaHit.Add(a.hits)
		a.eng.arenaMis.Add(a.misses)
		a.hits, a.misses = 0, 0
	}
	a.next = 0
}

package fingerprint

import (
	"fmt"
	"math/big"
	"testing"
	"time"

	"github.com/factorable/weakkeys/internal/batchgcd"
	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/devices"
	"github.com/factorable/weakkeys/internal/population"
	"github.com/factorable/weakkeys/internal/weakrsa"
)

// corpusBuilder assembles a deterministic test corpus.
type corpusBuilder struct {
	t       *testing.T
	factory *population.KeyFactory
	certs   []*certs.Certificate
	serial  int64
}

func newCorpus(t *testing.T) *corpusBuilder {
	return &corpusBuilder{t: t, factory: population.NewKeyFactory(99, 128)}
}

func (b *corpusBuilder) add(p devices.Profile, key *weakrsa.PrivateKey) *certs.Certificate {
	b.t.Helper()
	b.serial++
	id := devices.Identity{IP: fmt.Sprintf("10.0.0.%d", b.serial), Serial: b.serial, Model: p.Model}
	var sans []string
	if p.DNSNames != nil {
		sans = p.DNSNames(id)
	}
	c, err := certs.SelfSigned(big.NewInt(b.serial), p.Subject(id),
		time.Unix(0, 0), time.Unix(1<<40, 0), sans, key.N, key.E, key.D)
	if err != nil {
		b.t.Fatal(err)
	}
	b.certs = append(b.certs, c)
	return c
}

func (b *corpusBuilder) healthy(p devices.Profile) *certs.Certificate {
	b.t.Helper()
	k, err := b.factory.Healthy()
	if err != nil {
		b.t.Fatal(err)
	}
	return b.add(p, k)
}

func (b *corpusBuilder) shared(p devices.Profile, pool string, gen weakrsa.PrimeGen) *certs.Certificate {
	b.t.Helper()
	k, err := b.factory.SharedPrime(pool, gen)
	if err != nil {
		b.t.Fatal(err)
	}
	return b.add(p, k)
}

func (b *corpusBuilder) clique(p devices.Profile, name string) *certs.Certificate {
	b.t.Helper()
	k, err := b.factory.CliqueKey(name, weakrsa.PrimeOpenSSL)
	if err != nil {
		b.t.Fatal(err)
	}
	return b.add(p, k)
}

// analyze runs batch GCD and the fingerprint pipeline over the corpus.
func (b *corpusBuilder) analyze(extra func(*Input)) *Result {
	b.t.Helper()
	seen := make(map[string]bool)
	var moduli []*big.Int
	var keys []string
	for _, c := range b.certs {
		k := c.ModulusKey()
		if seen[k] {
			continue
		}
		seen[k] = true
		moduli = append(moduli, c.N)
		keys = append(keys, k)
	}
	results, err := batchgcd.Factor(moduli)
	if err != nil {
		b.t.Fatal(err)
	}
	div := make(map[string]*big.Int)
	for _, r := range results {
		div[keys[r.Index]] = r.Divisor
	}
	in := Input{Certs: b.certs, Divisors: div, ModulusBits: 128}
	if extra != nil {
		extra(&in)
	}
	return Analyze(in)
}

func fp(t *testing.T, c *certs.Certificate) [32]byte {
	t.Helper()
	f, err := c.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSubjectLabeling(t *testing.T) {
	b := newCorpus(t)
	j := b.healthy(devices.ProfileJuniper)
	m := b.healthy(devices.ProfileMcAfee)
	ci := b.healthy(devices.ProfileCisco("RV082"))
	fb := b.healthy(devices.ProfileFritzBox)
	hp := b.healthy(devices.ProfileHP)
	ibm := b.healthy(devices.ProfileIBM)
	res := b.analyze(nil)

	want := []struct {
		c      *certs.Certificate
		vendor string
		model  string
	}{
		{j, "Juniper", ""}, {m, "McAfee", "SnapGear"}, {ci, "Cisco", "RV082"},
		{fb, "Fritz!Box", ""}, {hp, "HP", "iLO"},
	}
	for _, w := range want {
		lbl, ok := res.Labels[fp(t, w.c)]
		if !ok {
			t.Errorf("%s cert unlabeled", w.vendor)
			continue
		}
		if lbl.Vendor != w.vendor || lbl.Model != w.model || lbl.Method != BySubject {
			t.Errorf("got %+v, want %s/%s by subject", lbl, w.vendor, w.model)
		}
	}
	if _, ok := res.Labels[fp(t, ibm)]; ok {
		t.Error("anonymous IBM cert should stay unlabeled without factored clique")
	}
}

func TestSharedPrimeExtrapolation(t *testing.T) {
	b := newCorpus(t)
	// A labeled Fritz!Box cert and an IP-only cert: the first two draws
	// from a fresh pool always share a cohort (cohort sizes are >= 2),
	// so batch GCD links them and the label must propagate.
	b.shared(devices.ProfileFritzBox, "Fritz!Box", weakrsa.PrimeOpenSSL)
	ipOnly := b.shared(devices.ProfileFritzBoxIPOnly, "Fritz!Box", weakrsa.PrimeOpenSSL)
	res := b.analyze(nil)

	lbl, ok := res.Labels[fp(t, ipOnly)]
	if !ok {
		t.Fatal("IP-only certificate not extrapolated")
	}
	if lbl.Vendor != "Fritz!Box" || lbl.Method != BySharedPrime {
		t.Errorf("got %+v", lbl)
	}
	if !IPOnlySubject(ipOnly) {
		t.Error("IP-only subject not recognized")
	}
}

func TestCliqueDetectionAndAttribution(t *testing.T) {
	b := newCorpus(t)
	var members []*certs.Certificate
	for i := 0; i < 12; i++ {
		members = append(members, b.clique(devices.ProfileIBM, "IBM"))
	}
	siemens := b.clique(devices.ProfileSiemens, "IBM") // the overlap
	b.healthy(devices.GenericProfile("ZyXEL", devices.KeySharedPrime, weakrsa.PrimeNaive))

	cliquePrimes := make(map[string]string)
	for _, p := range b.factory.Clique("IBM").Primes() {
		cliquePrimes[p.String()] = "IBM"
	}
	res := b.analyze(func(in *Input) { in.CliqueVendors = cliquePrimes })

	if len(res.Cliques) != 1 {
		t.Fatalf("cliques detected: %d", len(res.Cliques))
	}
	cl := res.Cliques[0]
	if len(cl.Primes) > weakrsa.IBMCliquePrimes {
		t.Errorf("clique has %d primes, max 9", len(cl.Primes))
	}
	if len(cl.ModKeys) <= len(cl.Primes) {
		t.Error("clique should have more moduli than primes")
	}
	ibmLabeled := 0
	for _, c := range members {
		lbl, ok := res.Labels[fp(t, c)]
		if ok && lbl.Vendor == "IBM" && lbl.Method == ByClique {
			ibmLabeled++
		}
	}
	if ibmLabeled < len(members)-2 {
		t.Errorf("only %d/%d IBM certs attributed", ibmLabeled, len(members))
	}
	// The Siemens cert keeps its subject label; the overlap is recorded.
	lbl := res.Labels[fp(t, siemens)]
	if lbl.Vendor != "Siemens" {
		t.Errorf("Siemens overlap cert relabeled: %+v", lbl)
	}
	if res.PrimeOverlaps[[2]string{"IBM", "Siemens"}] == 0 {
		t.Error("Siemens/IBM overlap not recorded")
	}
}

func TestDellXeroxOverlap(t *testing.T) {
	b := newCorpus(t)
	// Dell Imaging and Xerox share the pool; ensure a shared cohort
	// prime spans vendors by drawing consecutively.
	b.shared(devices.ProfileDellImaging, "Xerox", weakrsa.PrimeNaive)
	b.shared(devices.GenericProfile("Xerox", devices.KeySharedPrime, weakrsa.PrimeNaive), "Xerox", weakrsa.PrimeNaive)
	res := b.analyze(nil)
	if res.PrimeOverlaps[[2]string{"Dell", "Xerox"}] == 0 {
		t.Errorf("Dell/Xerox prime overlap not recorded: %v", res.PrimeOverlaps)
	}
}

func TestOpenSSLClassification(t *testing.T) {
	b := newCorpus(t)
	// Vulnerable OpenSSL-style vendor and vulnerable naive vendor.
	for i := 0; i < 3; i++ {
		b.shared(devices.ProfileInnominate, "Innominate", weakrsa.PrimeOpenSSL)
		b.shared(devices.ProfileJuniper, "Juniper", weakrsa.PrimeNaive)
	}
	// A healthy vendor: no factored keys, so unknown.
	b.healthy(devices.GenericProfile("Fortinet", devices.KeyHealthy, weakrsa.PrimeNaive))
	res := b.analyze(nil)

	if got := res.Vendors["Innominate"].OpenSSL; got != devices.OpenSSLLikely {
		t.Errorf("Innominate classified %v", got)
	}
	if got := res.Vendors["Juniper"].OpenSSL; got != devices.OpenSSLNot {
		t.Errorf("Juniper classified %v (sat %d / %d)", got,
			res.Vendors["Juniper"].PrimesSatisfyingOpenSSL, res.Vendors["Juniper"].PrimesTotal)
	}
	if got := res.Vendors["Fortinet"].OpenSSL; got != devices.OpenSSLUnknown {
		t.Errorf("Fortinet classified %v, want unknown (no private keys)", got)
	}
}

func TestBitErrorDetection(t *testing.T) {
	b := newCorpus(t)
	good := b.shared(devices.ProfileJuniper, "Juniper", weakrsa.PrimeNaive)
	b.shared(devices.ProfileJuniper, "Juniper", weakrsa.PrimeNaive)
	// A corrupted copy of the good modulus, pretending the wire flipped
	// bit 5. Give it a divisor as if batch GCD caught it sharing small
	// factors.
	corrupted := weakrsa.CorruptBits(good.N, 5)
	cc := *good
	cc.N = corrupted
	b.certs = append(b.certs, &cc)

	res := b.analyze(func(in *Input) {
		in.Divisors[string(corrupted.Bytes())] = big.NewInt(3)
	})
	if len(res.BitErrors) != 1 {
		t.Fatalf("bit errors: %d", len(res.BitErrors))
	}
	be := res.BitErrors[0]
	if be.TwinKey != good.ModulusKey() {
		t.Error("twin modulus not found")
	}
	// The corrupted modulus must not be counted as a factored key.
	if _, ok := res.Factors[string(corrupted.Bytes())]; ok {
		t.Error("bit-error modulus treated as factored")
	}
}

func TestMITMDetection(t *testing.T) {
	b := newCorpus(t)
	mitmKey, err := b.factory.Healthy()
	if err != nil {
		t.Fatal(err)
	}
	// Five distinct device certs all carrying the middlebox modulus.
	for i := 0; i < 5; i++ {
		b.add(devices.GenericProfile("ZyXEL", devices.KeySharedPrime, weakrsa.PrimeNaive), mitmKey)
	}
	// Ordinary vendors for contrast.
	b.healthy(devices.ProfileJuniper)
	res := b.analyze(func(in *Input) {
		in.IPCount = map[string]int{string(mitmKey.N.Bytes()): 5}
	})
	if len(res.MITM) != 1 {
		t.Fatalf("MITM suspects: %d", len(res.MITM))
	}
	if res.MITM[0].DistinctCerts != 5 || res.MITM[0].DistinctIPs != 5 {
		t.Errorf("suspect: %+v", res.MITM[0])
	}
}

func TestVendorStatsCounts(t *testing.T) {
	b := newCorpus(t)
	b.shared(devices.ProfileInnominate, "Innominate", weakrsa.PrimeOpenSSL)
	b.shared(devices.ProfileInnominate, "Innominate", weakrsa.PrimeOpenSSL)
	b.healthy(devices.ProfileInnominate)
	res := b.analyze(nil)
	vs := res.Vendors["Innominate"]
	if vs.CertsLabeled != 3 {
		t.Errorf("labeled = %d, want 3", vs.CertsLabeled)
	}
	if vs.VulnCerts != 2 {
		t.Errorf("vulnerable = %d, want 2", vs.VulnCerts)
	}
	if vs.PrimesTotal != 4 {
		t.Errorf("primes = %d, want 4", vs.PrimesTotal)
	}
}

func TestClassifyOpenSSLBoundaries(t *testing.T) {
	if classifyOpenSSL(0, 0) != devices.OpenSSLUnknown {
		t.Error("no data should be unknown")
	}
	if classifyOpenSSL(10, 10) != devices.OpenSSLLikely {
		t.Error("all satisfying should be likely")
	}
	if classifyOpenSSL(1, 10) != devices.OpenSSLNot {
		t.Error("mostly violating should be not")
	}
	if classifyOpenSSL(9, 10) != devices.OpenSSLNot {
		t.Error("any violation rules out OpenSSL")
	}
}

func TestMethodString(t *testing.T) {
	for m, want := range map[Method]string{
		Unlabeled: "unlabeled", BySubject: "subject",
		BySharedPrime: "shared-prime", ByClique: "clique",
	} {
		if m.String() != want {
			t.Errorf("%d: %q", m, m.String())
		}
	}
}

func TestMethodCounts(t *testing.T) {
	b := newCorpus(t)
	b.healthy(devices.ProfileJuniper) // subject-labeled
	b.shared(devices.ProfileFritzBox, "fb", weakrsa.PrimeOpenSSL)
	b.shared(devices.ProfileFritzBoxIPOnly, "fb", weakrsa.PrimeOpenSSL) // extrapolated
	res := b.analyze(nil)
	counts := res.MethodCounts()
	if counts[BySubject] != 2 {
		t.Errorf("subject-labeled = %d, want 2", counts[BySubject])
	}
	if counts[BySharedPrime] != 1 {
		t.Errorf("shared-prime-labeled = %d, want 1", counts[BySharedPrime])
	}
	if res.VendorCount() < 2 {
		t.Errorf("vendors = %d", res.VendorCount())
	}
}

func TestCliqueMajorityFallback(t *testing.T) {
	// Without analyst knowledge (no CliqueVendors), a clique whose
	// members carry subject labels is attributed by majority vote.
	b := newCorpus(t)
	for i := 0; i < 20; i++ {
		b.clique(devices.ProfileSiemens, "X") // all subject-labeled Siemens
	}
	res := b.analyze(nil)
	if len(res.Cliques) != 1 {
		t.Fatalf("cliques: %d", len(res.Cliques))
	}
	// All members already labeled by subject; the majority path runs and
	// records no overlaps (labels agree with the majority vendor).
	if n := res.PrimeOverlaps[[2]string{"Siemens", "Siemens"}]; n != 0 {
		t.Errorf("self-overlap recorded: %d", n)
	}
	// Now an anonymous clique: no labels anywhere, no attribution.
	b2 := newCorpus(t)
	for i := 0; i < 20; i++ {
		b2.clique(devices.ProfileIBM, "Y")
	}
	res2 := b2.analyze(nil)
	if len(res2.Cliques) != 1 {
		t.Fatalf("cliques: %d", len(res2.Cliques))
	}
	for fp := range res2.Labels {
		_ = fp
		t.Error("anonymous clique should stay unlabeled without analyst knowledge")
		break
	}
	// Mixed: one labeled member among anonymous ones -> majority label
	// propagates to the rest via ByClique.
	b3 := newCorpus(t)
	var anon []*certs.Certificate
	for i := 0; i < 20; i++ {
		anon = append(anon, b3.clique(devices.ProfileIBM, "Z"))
	}
	b3.clique(devices.ProfileSiemens, "Z")
	res3 := b3.analyze(nil)
	labeled := 0
	for _, c := range anon {
		if lbl, ok := res3.Labels[fp(t, c)]; ok {
			if lbl.Vendor != "Siemens" || lbl.Method != ByClique {
				t.Errorf("fallback label: %+v", lbl)
			}
			labeled++
		}
	}
	if labeled == 0 {
		t.Error("majority fallback did not propagate")
	}
}

func TestIPOnlySubjectNegativeCases(t *testing.T) {
	b := newCorpus(t)
	withOrg := b.healthy(devices.GenericProfile("ZyXEL", devices.KeyHealthy, weakrsa.PrimeNaive))
	if IPOnlySubject(withOrg) {
		t.Error("cert with organization is not IP-only")
	}
	named := b.healthy(devices.ProfileJuniper)
	if IPOnlySubject(named) {
		t.Error("non-IP common name is not IP-only")
	}
}

// Package fingerprint identifies the implementations behind observed
// certificates and factored keys, reproducing Section 3.3 of the paper:
// certificate-subject fingerprints, shared-prime extrapolation, clique
// detection, the OpenSSL prime-generation fingerprint, bit-error
// classification, and the ISP man-in-the-middle detector.
package fingerprint

import (
	"net"
	"strings"

	"github.com/factorable/weakkeys/internal/certs"
)

// Method records how a certificate was attributed to a vendor.
type Method int

const (
	// Unlabeled: no rule matched and no extrapolation applied.
	Unlabeled Method = iota
	// BySubject: the distinguished name or SANs identified the vendor
	// (Section 3.3.1; 26,272,330 certificates in the paper).
	BySubject
	// BySharedPrime: an unlabeled certificate's factored prime appeared
	// in a labeled vendor's prime pool (Section 3.3.2).
	BySharedPrime
	// ByClique: the modulus belongs to a detected low-entropy clique
	// (the IBM 9-prime family).
	ByClique
)

func (m Method) String() string {
	switch m {
	case BySubject:
		return "subject"
	case BySharedPrime:
		return "shared-prime"
	case ByClique:
		return "clique"
	default:
		return "unlabeled"
	}
}

// Label is a vendor attribution for one certificate.
type Label struct {
	Vendor string
	Model  string
	Method Method
}

// SubjectRule maps certificate contents to a vendor/model.
type SubjectRule struct {
	// Name documents the rule.
	Name string
	// Match returns the label and true when the rule applies.
	Match func(c *certs.Certificate) (vendor, model string, ok bool)
}

// DefaultSubjectRules encodes the Section 3.3.1 heuristics. Order
// matters: specific device shapes run before the generic O=vendor rule.
func DefaultSubjectRules() []SubjectRule {
	return []SubjectRule{
		{
			Name: "juniper-system-generated",
			// Every Juniper certificate contained "CN=system generated".
			Match: func(c *certs.Certificate) (string, string, bool) {
				if c.Subject.CommonName == "system generated" {
					return "Juniper", "", true
				}
				return "", "", false
			},
		},
		{
			Name: "mcafee-default-dn",
			// McAfee SnapGear: the all-defaults distinguished name.
			Match: func(c *certs.Certificate) (string, string, bool) {
				if c.Subject.CommonName == "Default Common Name" &&
					c.Subject.Organization == "Default Organization" {
					return "McAfee", "SnapGear", true
				}
				return "", "", false
			},
		},
		{
			Name: "fritzbox-domains",
			// myfritz.net common names or fritz.box-family SANs.
			Match: func(c *certs.Certificate) (string, string, bool) {
				if strings.HasSuffix(c.Subject.CommonName, ".myfritz.net") {
					return "Fritz!Box", "", true
				}
				for _, san := range c.DNSNames {
					if san == "fritz.box" || strings.HasSuffix(san, ".fritz.box") ||
						san == "myfritz.box" || strings.HasSuffix(san, ".box") {
						return "Fritz!Box", "", true
					}
				}
				return "", "", false
			},
		},
		{
			Name: "dell-imaging-group",
			// The OU that shares prime material with Xerox.
			Match: func(c *certs.Certificate) (string, string, bool) {
				if c.Subject.OrganizationalUnit == "Dell Imaging Group" {
					return "Dell", "Imaging", true
				}
				return "", "", false
			},
		},
		{
			Name: "cisco-model-in-ou",
			// Cisco puts the model in the organizational unit.
			Match: func(c *certs.Certificate) (string, string, bool) {
				if strings.HasPrefix(c.Subject.Organization, "Cisco") {
					return "Cisco", c.Subject.OrganizationalUnit, true
				}
				return "", "", false
			},
		},
		{
			Name: "siemens-building-automation",
			Match: func(c *certs.Certificate) (string, string, bool) {
				if strings.HasPrefix(c.Subject.Organization, "Siemens") {
					return "Siemens", "Building Automation", true
				}
				return "", "", false
			},
		},
		{
			Name: "hp-organization",
			Match: func(c *certs.Certificate) (string, string, bool) {
				if c.Subject.Organization == "Hewlett-Packard" {
					return "HP", "iLO", true
				}
				return "", "", false
			},
		},
		{
			Name: "generic-o-vendor",
			// The paper's workhorse: "O=vendor" in the distinguished
			// name (Hewlett-Packard, Xerox, TP-LINK, Conel s.r.o., ...).
			Match: func(c *certs.Certificate) (string, string, bool) {
				o := c.Subject.Organization
				if o == "" || looksGenerated(o) {
					return "", "", false
				}
				return canonicalVendor(o), "", true
			},
		},
	}
}

// looksGenerated filters organization strings that are per-device noise
// rather than vendor identities (customer names on IBM cards, etc.).
func looksGenerated(o string) bool {
	return strings.HasPrefix(o, "Customer Site ")
}

// canonicalVendor strips common corporate suffixes so "Dell Inc." and
// "Dell" label the same vendor.
func canonicalVendor(o string) string {
	for _, suffix := range []string{" Inc.", " Inc", " Corp.", " Corp", " GmbH", ", Inc.", " Systems, Inc."} {
		o = strings.TrimSuffix(o, suffix)
	}
	return o
}

// IPOnlySubject reports whether the certificate subject identifies only
// an IP address in octets — the tens of thousands of certificates the
// paper could label only via shared primes.
func IPOnlySubject(c *certs.Certificate) bool {
	if c.Subject.Organization != "" || c.Subject.OrganizationalUnit != "" {
		return false
	}
	return net.ParseIP(c.Subject.CommonName) != nil
}

// LabelBySubject applies the rules in order and returns the first match.
func LabelBySubject(c *certs.Certificate, rules []SubjectRule) (Label, bool) {
	for _, r := range rules {
		if vendor, model, ok := r.Match(c); ok {
			return Label{Vendor: vendor, Model: model, Method: BySubject}, true
		}
	}
	return Label{}, false
}

package fingerprint

import (
	"math/big"
	"sort"

	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/devices"
	"github.com/factorable/weakkeys/internal/numtheory"
)

// Input bundles everything the fingerprint pipeline consumes: the distinct
// certificates and the batch-GCD output.
type Input struct {
	// Certs are the distinct certificates of the corpus.
	Certs []*certs.Certificate
	// Divisors maps modulus keys (big.Int bytes as string) to the
	// nontrivial divisor batch GCD reported. A divisor equal to the
	// modulus means both primes are shared (clique member).
	Divisors map[string]*big.Int
	// IPCount maps modulus keys to the number of distinct IPs ever
	// serving that modulus (for the MITM detector). Optional.
	IPCount map[string]int
	// CliqueVendors is analyst knowledge mapping known clique primes
	// (by decimal string) to a vendor — the paper identified the IBM
	// nine-prime pool from the 2012 disclosure and "labeled them all
	// IBM" even though the certificates name only customers. Optional;
	// unidentified cliques fall back to a majority vote over any
	// subject-labeled members.
	CliqueVendors map[string]string
	// Rules are the subject rules; DefaultSubjectRules() when nil.
	Rules []SubjectRule
	// ModulusBits is the expected well-formed modulus size for the
	// bit-error classifier. 0 disables the size check.
	ModulusBits int
}

// Factors is a recovered factorization p*q of a modulus (p <= q).
type Factors struct {
	P, Q *big.Int
}

// CliqueGroup is a detected low-entropy prime clique: more moduli than
// distinct primes (the IBM signature).
type CliqueGroup struct {
	// Primes is the clique's prime pool.
	Primes []*big.Int
	// ModKeys are the member moduli.
	ModKeys []string
}

// BitErrorFinding is a non-well-formed "modulus" with, when found, the
// valid modulus it is a bit flip away from.
type BitErrorFinding struct {
	ModKey string
	// TwinKey is the valid modulus within one bit flip, or "".
	TwinKey string
	// SmoothBits is the bit length of the small-prime part, the signal
	// the paper describes (random integers are divisible by many small
	// primes; true moduli by none).
	SmoothBits int
}

// MITMSuspect is a modulus served by suspiciously many unrelated
// certificates and IPs without being factorable: the Internet Rimon
// signature.
type MITMSuspect struct {
	ModKey        string
	DistinctCerts int
	DistinctIPs   int
}

// VendorStats aggregates the per-vendor fingerprint outcomes.
type VendorStats struct {
	Vendor string
	// CertsLabeled counts distinct certificates attributed.
	CertsLabeled int
	// VulnCerts counts labeled certificates whose modulus was factored.
	VulnCerts int
	// PrimesSatisfyingOpenSSL / PrimesTotal drive the Table 5 class.
	PrimesSatisfyingOpenSSL int
	PrimesTotal             int
	OpenSSL                 devices.OpenSSLClass
}

// Result is the full fingerprint analysis.
type Result struct {
	// Labels maps certificate fingerprints to vendor attributions.
	Labels map[[32]byte]Label
	// Factors maps factored modulus keys to recovered prime splits.
	Factors map[string]Factors
	// Cliques are detected low-entropy cliques.
	Cliques []CliqueGroup
	// BitErrors are set-aside non-well-formed moduli.
	BitErrors []BitErrorFinding
	// MITM are suspected middlebox keys.
	MITM []MITMSuspect
	// Vendors aggregates per-vendor statistics, keyed by vendor name.
	Vendors map[string]*VendorStats
	// PrimeOverlaps records pairs of vendors whose factored keys share a
	// prime (Dell/Xerox, Siemens/IBM).
	PrimeOverlaps map[[2]string]int
}

// Analyze runs the full Section 3.3 pipeline.
func Analyze(in Input) *Result {
	rules := in.Rules
	if rules == nil {
		rules = DefaultSubjectRules()
	}
	res := &Result{
		Labels:        make(map[[32]byte]Label),
		Factors:       make(map[string]Factors),
		Vendors:       make(map[string]*VendorStats),
		PrimeOverlaps: make(map[[2]string]int),
	}

	// Index certificates by modulus.
	certsByMod := make(map[string][]*certs.Certificate)
	fpOf := make(map[*certs.Certificate][32]byte)
	for _, c := range in.Certs {
		fp, err := c.Fingerprint()
		if err != nil {
			continue
		}
		fpOf[c] = fp
		certsByMod[c.ModulusKey()] = append(certsByMod[c.ModulusKey()], c)
	}

	// Pass 0: set aside non-well-formed "moduli" across the whole
	// corpus, factored or not — the paper's 107 bit-error artifacts were
	// identified by not being products of two equal-sized primes, and
	// most were seen exactly once. Corrupted moduli usually pick up
	// small prime factors (a random integer is divisible by q with
	// probability 1/q), which is exactly what IsWellFormedModulus
	// sieves.
	bitError := make(map[string]bool)
	flagBitError := func(key string, n *big.Int) {
		if bitError[key] {
			return
		}
		bitError[key] = true
		finding := BitErrorFinding{
			ModKey:     key,
			SmoothBits: numtheory.SmoothBits(n, 256),
		}
		if twin := findBitErrorTwin(n, certsByMod); twin != "" {
			finding.TwinKey = twin
		}
		res.BitErrors = append(res.BitErrors, finding)
	}
	modKeys := make([]string, 0, len(certsByMod))
	for key := range certsByMod {
		modKeys = append(modKeys, key)
	}
	sort.Strings(modKeys)
	for _, key := range modKeys {
		n := new(big.Int).SetBytes([]byte(key))
		bits := in.ModulusBits
		if bits == 0 {
			bits = n.BitLen()
		}
		if !numtheory.IsWellFormedModulus(n, bits, 256) {
			flagBitError(key, n)
		}
	}
	factorable := make(map[string]*big.Int, len(in.Divisors))
	for key, div := range in.Divisors {
		if bitError[key] {
			continue
		}
		if _, seen := certsByMod[key]; !seen {
			// Bare-key moduli (no certificate) skip the well-formedness
			// scan above; check them here.
			n := new(big.Int).SetBytes([]byte(key))
			bits := in.ModulusBits
			if bits == 0 {
				bits = n.BitLen()
			}
			if !numtheory.IsWellFormedModulus(n, bits, 256) {
				flagBitError(key, n)
				continue
			}
		}
		factorable[key] = div
	}

	// Pass 1: recover factorizations. Degenerate divisors (divisor ==
	// modulus: both primes shared) are resolved by pairwise GCD within
	// the degenerate set — feasible because cliques are tiny.
	var degenerate []string
	for key, div := range factorable {
		n := new(big.Int).SetBytes([]byte(key))
		if div.Cmp(n) == 0 {
			degenerate = append(degenerate, key)
			continue
		}
		p := div
		q := new(big.Int).Quo(n, div)
		if p.Cmp(q) > 0 {
			p, q = q, p
		}
		res.Factors[key] = Factors{P: p, Q: q}
	}
	sort.Strings(degenerate)
	resolveDegenerate(degenerate, res.Factors)

	// Pass 1.5: validate recovered factorizations. A bit-flipped
	// modulus can slip past the small-prime sieve and still be
	// "factored" against another corrupted modulus via a shared
	// medium-sized factor — but the recovered pieces are composite and
	// unbalanced, never two equal-sized primes. The paper's test is
	// exactly "not the product of two equal-sized primes"; apply it.
	for key, f := range res.Factors {
		if validSplit(f, in.ModulusBits) {
			continue
		}
		delete(res.Factors, key)
		flagBitError(key, new(big.Int).SetBytes([]byte(key)))
	}

	// Pass 2: subject labeling.
	for _, c := range in.Certs {
		if lbl, ok := LabelBySubject(c, rules); ok {
			res.Labels[fpOf[c]] = lbl
		}
	}

	// Pass 3: clique detection over the share graph of factored moduli.
	res.Cliques = detectCliques(res.Factors)
	cliqueMod := make(map[string]bool)
	for _, cl := range res.Cliques {
		for _, k := range cl.ModKeys {
			cliqueMod[k] = true
		}
	}

	// Pass 3.5: clique attribution. Analyst-known primes win (the paper
	// labeled the 36-key family IBM from the 2012 disclosure); a
	// majority vote over any subject-labeled members is the fallback.
	// Subject labels that disagree with the clique vendor are the
	// Siemens-style overlaps — recorded, never overwritten.
	for _, cl := range res.Cliques {
		vendor := ""
		for _, p := range cl.Primes {
			if v, ok := in.CliqueVendors[p.String()]; ok {
				vendor = v
				break
			}
		}
		if vendor == "" {
			vendor = majorityVendor(cl, certsByMod, fpOf, res.Labels)
		}
		if vendor == "" {
			continue
		}
		for _, key := range cl.ModKeys {
			for _, c := range certsByMod[key] {
				if lbl, ok := res.Labels[fpOf[c]]; ok {
					if lbl.Vendor != vendor {
						res.PrimeOverlaps[orderedPair(lbl.Vendor, vendor)]++
					}
					continue
				}
				res.Labels[fpOf[c]] = Label{Vendor: vendor, Method: ByClique}
			}
		}
	}

	// Pass 4: vendor prime pools from subject-labeled factored certs,
	// then shared-prime extrapolation for unlabeled certs. Clique
	// moduli are excluded — their primes span vendors by construction.
	primeVendor := make(map[string]string) // prime -> vendor
	for _, c := range in.Certs {
		lbl, ok := res.Labels[fpOf[c]]
		if !ok || lbl.Method != BySubject {
			continue
		}
		key := c.ModulusKey()
		if cliqueMod[key] {
			continue
		}
		f, ok := res.Factors[key]
		if !ok {
			continue
		}
		for _, p := range []*big.Int{f.P, f.Q} {
			k := p.String()
			if prev, ok := primeVendor[k]; ok && prev != lbl.Vendor {
				res.PrimeOverlaps[orderedPair(prev, lbl.Vendor)]++
				continue
			}
			primeVendor[k] = lbl.Vendor
		}
	}
	for _, c := range in.Certs {
		if _, ok := res.Labels[fpOf[c]]; ok {
			continue
		}
		key := c.ModulusKey()
		if cliqueMod[key] {
			continue
		}
		f, ok := res.Factors[key]
		if !ok {
			continue
		}
		if v, ok := primeVendor[f.P.String()]; ok {
			res.Labels[fpOf[c]] = Label{Vendor: v, Method: BySharedPrime}
		} else if v, ok := primeVendor[f.Q.String()]; ok {
			res.Labels[fpOf[c]] = Label{Vendor: v, Method: BySharedPrime}
		}
	}

	// Pass 5: per-vendor aggregation and the OpenSSL fingerprint.
	for _, c := range in.Certs {
		lbl, ok := res.Labels[fpOf[c]]
		if !ok {
			continue
		}
		vs := res.Vendors[lbl.Vendor]
		if vs == nil {
			vs = &VendorStats{Vendor: lbl.Vendor}
			res.Vendors[lbl.Vendor] = vs
		}
		vs.CertsLabeled++
		if f, ok := res.Factors[c.ModulusKey()]; ok {
			vs.VulnCerts++
			for _, p := range []*big.Int{f.P, f.Q} {
				vs.PrimesTotal++
				if numtheory.SatisfiesOpenSSLProperty(p) {
					vs.PrimesSatisfyingOpenSSL++
				}
			}
		}
	}
	for _, vs := range res.Vendors {
		vs.OpenSSL = classifyOpenSSL(vs.PrimesSatisfyingOpenSSL, vs.PrimesTotal)
	}

	// Pass 6: MITM suspects — unfactored moduli served by many distinct
	// certificates (and IPs when known).
	for key, cs := range certsByMod {
		if _, factored := in.Divisors[key]; factored {
			continue
		}
		if len(cs) < 3 {
			continue
		}
		s := MITMSuspect{ModKey: key, DistinctCerts: len(cs)}
		if in.IPCount != nil {
			s.DistinctIPs = in.IPCount[key]
			if s.DistinctIPs < 3 {
				continue
			}
		}
		res.MITM = append(res.MITM, s)
	}
	sort.Slice(res.MITM, func(i, j int) bool { return res.MITM[i].DistinctCerts > res.MITM[j].DistinctCerts })
	return res
}

// MethodCounts tallies labeled certificates per attribution method — the
// paper's accounting ("26,272,330 certificates from 18 vendors" via
// subjects, "20,717 certificates as Fritz!Box" via shared primes, 3,229
// via the IBM clique).
func (r *Result) MethodCounts() map[Method]int {
	out := make(map[Method]int)
	for _, lbl := range r.Labels {
		out[lbl.Method]++
	}
	return out
}

// VendorCount returns the number of distinct vendors attributed.
func (r *Result) VendorCount() int { return len(r.Vendors) }

// validSplit reports whether a recovered factorization looks like a real
// RSA key: both pieces probable primes of roughly half the modulus size.
func validSplit(f Factors, modulusBits int) bool {
	if !f.P.ProbablyPrime(12) || !f.Q.ProbablyPrime(12) {
		return false
	}
	if modulusBits > 0 {
		half := modulusBits / 2
		for _, p := range []*big.Int{f.P, f.Q} {
			if diff := p.BitLen() - half; diff < -2 || diff > 2 {
				return false
			}
		}
	}
	return true
}

// classifyOpenSSL implements the Table 5 decision: all primes satisfying
// the property means likely OpenSSL; a substantial violating fraction
// means definitely not. (A random non-OpenSSL prime satisfies it with
// probability ~7.5%, so even a small sample separates cleanly.)
func classifyOpenSSL(sat, total int) devices.OpenSSLClass {
	if total == 0 {
		return devices.OpenSSLUnknown
	}
	if sat == total {
		return devices.OpenSSLLikely
	}
	if float64(sat) < 0.5*float64(total) {
		return devices.OpenSSLNot
	}
	// Mixed: a mostly-satisfying sample with some violations still rules
	// out OpenSSL (OpenSSL can never emit a violating prime).
	return devices.OpenSSLNot
}

// detectCliques groups factored moduli into connected components by
// shared primes and reports components with more moduli than distinct
// primes — impossible for the star-shaped shared-first-prime failure,
// and the defining shape of the IBM clique.
func detectCliques(factors map[string]Factors) []CliqueGroup {
	parent := make(map[string]string) // union-find over prime strings
	var find func(string) string
	find = func(x string) string {
		if parent[x] == "" || parent[x] == x {
			parent[x] = x
			return x
		}
		r := find(parent[x])
		parent[x] = r
		return r
	}
	union := func(a, b string) { parent[find(a)] = find(b) }

	keys := make([]string, 0, len(factors))
	for k := range factors {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		f := factors[k]
		union(f.P.String(), f.Q.String())
	}
	type comp struct {
		primes map[string]*big.Int
		mods   []string
	}
	comps := make(map[string]*comp)
	for _, k := range keys {
		f := factors[k]
		root := find(f.P.String())
		c := comps[root]
		if c == nil {
			c = &comp{primes: make(map[string]*big.Int)}
			comps[root] = c
		}
		c.primes[f.P.String()] = f.P
		c.primes[f.Q.String()] = f.Q
		c.mods = append(c.mods, k)
	}
	var out []CliqueGroup
	for _, c := range comps {
		if len(c.mods) <= len(c.primes) {
			continue // star/chain shapes: the ordinary shared-prime failure
		}
		g := CliqueGroup{ModKeys: c.mods}
		pk := make([]string, 0, len(c.primes))
		for s := range c.primes {
			pk = append(pk, s)
		}
		sort.Strings(pk)
		for _, s := range pk {
			g.Primes = append(g.Primes, c.primes[s])
		}
		sort.Strings(g.ModKeys)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return len(out[i].ModKeys) > len(out[j].ModKeys) })
	return out
}

// resolveDegenerate splits moduli whose batch divisor equalled the
// modulus by pairwise GCD against other degenerate moduli and against
// already-recovered primes.
func resolveDegenerate(keys []string, factors map[string]Factors) {
	ns := make([]*big.Int, len(keys))
	for i, k := range keys {
		ns[i] = new(big.Int).SetBytes([]byte(k))
	}
	one := big.NewInt(1)
	for i := range ns {
		if _, done := factors[keys[i]]; done {
			continue
		}
		for j := range ns {
			if i == j {
				continue
			}
			g := new(big.Int).GCD(nil, nil, ns[i], ns[j])
			if g.Cmp(one) == 0 || g.Cmp(ns[i]) == 0 {
				continue
			}
			q := new(big.Int).Quo(ns[i], g)
			p := g
			if p.Cmp(q) > 0 {
				p, q = q, p
			}
			factors[keys[i]] = Factors{P: p, Q: q}
			break
		}
	}
}

// majorityVendor returns the most common vendor label among a clique's
// member certificates, or "" when none are labeled.
func majorityVendor(cl CliqueGroup, certsByMod map[string][]*certs.Certificate, fpOf map[*certs.Certificate][32]byte, labels map[[32]byte]Label) string {
	counts := make(map[string]int)
	for _, key := range cl.ModKeys {
		for _, c := range certsByMod[key] {
			if lbl, ok := labels[fpOf[c]]; ok {
				counts[lbl.Vendor]++
			}
		}
	}
	best, bestN := "", 0
	for v, n := range counts {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	return best
}

// findBitErrorTwin looks for a known modulus within one bit flip of n.
func findBitErrorTwin(n *big.Int, certsByMod map[string][]*certs.Certificate) string {
	for bit := 0; bit <= n.BitLen(); bit++ {
		t := new(big.Int).SetBit(n, bit, n.Bit(bit)^1)
		key := string(t.Bytes())
		if _, ok := certsByMod[key]; ok {
			return key
		}
	}
	return ""
}

func orderedPair(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

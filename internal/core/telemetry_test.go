package core

import (
	"context"
	"strings"
	"testing"

	"github.com/factorable/weakkeys/internal/telemetry"
)

// TestRunPopulatesTelemetry is the acceptance check for the telemetry
// wiring: one small run with a shared registry and tracer must leave
// metrics from the pipeline, population, distgcd and core layers in the
// registry, and a trace with stage spans nested under the pipeline root
// plus per-node batch-GCD spans on their own tracks.
func TestRunPopulatesTelemetry(t *testing.T) {
	reg := telemetry.New()
	tr := telemetry.NewTracer()
	_, err := Run(context.Background(), Options{
		Seed:      11,
		KeyBits:   128,
		Scale:     0.05,
		Subsets:   3,
		Telemetry: reg,
		Tracer:    tr,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Gauges and counters from every instrumented package.
	for _, gauge := range []string{
		`pipeline_stage_items_out{stage="Dedup"}`, // pipeline
		"population_months_done",                  // population
		"population_devices_alive",
		"distgcd_moduli", // distgcd
		"distgcd_peak_node_tree_bytes",
		`distgcd_node_moduli{node="0"}`,
		"core_host_records", // core
		"core_pipeline_wall_seconds",
	} {
		if reg.GaugeValue(gauge) <= 0 {
			t.Errorf("gauge %s not populated", gauge)
		}
	}
	for _, counter := range []string{
		"pipeline_stages_completed_total",
		"population_observations_total",
		"core_runs_total",
	} {
		if reg.CounterValue(counter) <= 0 {
			t.Errorf("counter %s not populated", counter)
		}
	}
	snap := reg.Snapshot()
	var hasMonthHist bool
	for _, h := range snap.Histograms {
		if h.Name == "population_month_seconds" && h.Count > 0 {
			hasMonthHist = true
		}
	}
	if !hasMonthHist {
		t.Error("population_month_seconds histogram not populated")
	}

	// Spans: pipeline root, one per stage, per-month harvest children,
	// and per-node batch-GCD spans on non-zero tracks.
	events := tr.Events()
	names := map[string]int{}
	nodeTracks := map[int]bool{}
	for _, ev := range events {
		names[ev.Name]++
		if strings.HasPrefix(ev.Name, "node") {
			nodeTracks[ev.TID] = true
		}
	}
	for _, want := range []string{"pipeline", StageSimulate, StageHarvest, StageDedup, StageBatchGCD, StageFingerprint, StageAnalyze} {
		if names[want] == 0 {
			t.Errorf("trace missing span %q", want)
		}
	}
	if names["node0.build"] == 0 || names["node0.reduce"] == 0 {
		t.Errorf("trace missing per-node spans (have %v)", names)
	}
	if len(nodeTracks) != 3 {
		t.Errorf("node spans should cover 3 tracks, got %v", nodeTracks)
	}
	if nodeTracks[0] {
		t.Error("node spans should be on non-zero tracks")
	}
}

// TestRunWithoutTelemetryIsNilSafe pins the zero-config path: no
// registry, no tracer, everything still runs.
func TestRunWithoutTelemetryIsNilSafe(t *testing.T) {
	if _, err := Run(context.Background(), Options{
		Seed: 12, KeyBits: 128, Scale: 0.02, Subsets: 2,
	}); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/factorable/weakkeys/internal/pipeline"
)

// runCancelling runs a small study and cancels the context as soon as
// the named stage starts, returning the partial study and the error
// (guarded by a timeout so a hung cancellation fails the test instead
// of the suite).
func runCancelling(t *testing.T, stage string, subsets int) (*Study, error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type outcome struct {
		study *Study
		err   error
	}
	done := make(chan outcome, 1)
	go func() {
		study, err := Run(ctx, Options{
			Seed:    3,
			KeyBits: 128,
			Scale:   0.05,
			Subsets: subsets,
			Progress: func(ev pipeline.Event) {
				if ev.Stage == stage && ev.Kind == pipeline.StageStart {
					cancel()
				}
			},
		})
		done <- outcome{study, err}
	}()
	select {
	case out := <-done:
		return out.study, out.err
	case <-time.After(30 * time.Second):
		t.Fatalf("run did not return promptly after cancellation during %s", stage)
		return nil, nil
	}
}

func TestRunCancelledMidBatchGCD(t *testing.T) {
	for _, tc := range []struct {
		name    string
		subsets int
	}{
		{"singletree", 1},
		{"partitioned", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := runCancelling(t, StageBatchGCD, tc.subsets)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want wrapped context.Canceled", err)
			}
		})
	}
}

func TestRunCancelledMidHarvest(t *testing.T) {
	_, err := runCancelling(t, StageHarvest, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

// TestPartialStudyOnCancel is the `weakkeys -metrics` error-path fix: a
// cancelled run must still hand back the partial study whose RunReport
// covers every stage that started, so the cost profile of the work done
// so far can be printed.
func TestPartialStudyOnCancel(t *testing.T) {
	study, err := runCancelling(t, StageBatchGCD, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if study == nil || study.Report == nil {
		t.Fatal("cancelled run should return the partial study with its report")
	}
	// Everything before BatchGCD completed; BatchGCD itself is present
	// with the cancellation error.
	for _, name := range []string{StageSimulate, StageHarvest, StageDedup} {
		sr := study.Report.Stage(name)
		if sr == nil {
			t.Fatalf("partial report missing completed stage %s", name)
		}
		if sr.Err != nil {
			t.Errorf("completed stage %s carries error %v", name, sr.Err)
		}
	}
	gcd := study.Report.Stage(StageBatchGCD)
	if gcd == nil || gcd.Err == nil {
		t.Fatalf("partial report should include the failing stage: %+v", gcd)
	}
	if study.Report.Stage(StageAnalyze) != nil {
		t.Error("stages after the failure must not appear in the report")
	}
}

func TestRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Options{Scale: 0.02, KeyBits: 128}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

func TestRunReportCoversAllStages(t *testing.T) {
	s := testStudy(t)
	if s.Report == nil {
		t.Fatal("study has no pipeline report")
	}
	want := []string{StageSimulate, StageHarvest, StageDedup, StageBatchGCD, StageFingerprint, StageAnalyze}
	if len(s.Report.Stages) != len(want) {
		t.Fatalf("report stages = %d, want %d", len(s.Report.Stages), len(want))
	}
	for i, name := range want {
		sr := s.Report.Stages[i]
		if sr.Name != name {
			t.Errorf("stage %d = %s, want %s", i, sr.Name, name)
		}
		if sr.Err != nil {
			t.Errorf("stage %s errored: %v", name, sr.Err)
		}
		if sr.Stats.Wall <= 0 {
			t.Errorf("stage %s has no wall time", name)
		}
	}
	// The dedup output feeds the batch GCD input.
	dedup, gcd := s.Report.Stage(StageDedup), s.Report.Stage(StageBatchGCD)
	if dedup.Stats.ItemsOut != gcd.Stats.ItemsIn {
		t.Errorf("dedup out %d != batchgcd in %d", dedup.Stats.ItemsOut, gcd.Stats.ItemsIn)
	}
	if gcd.Stats.ItemsOut == 0 {
		t.Error("batch GCD found nothing in a study with vulnerable lines")
	}
}

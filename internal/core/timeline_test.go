package core

import (
	"context"
	"testing"

	"github.com/factorable/weakkeys/internal/keycheck"
)

// TestSnapshotTimeline replays the shared study through the incremental
// path and cross-checks the terminal snapshot against the study's own
// batch GCD: folding the corpus in date by date must converge on the
// same factored set the one-shot run finds.
func TestSnapshotTimeline(t *testing.T) {
	s := testStudy(t)
	entries, err := SnapshotTimeline(context.Background(), s, 4)
	if err != nil {
		t.Fatal(err)
	}
	dates := s.Store.ScanDates("")
	if len(entries) != len(dates) {
		t.Fatalf("%d entries for %d scan dates", len(entries), len(dates))
	}

	prevModuli := 0
	reusedSomewhere := false
	for i, e := range entries {
		if !e.Date.Equal(dates[i]) {
			t.Fatalf("entry %d: date %v, want %v", i, e.Date, dates[i])
		}
		if got := e.Snapshot.Moduli(); got < prevModuli {
			t.Fatalf("entry %d: moduli shrank %d -> %d", i, prevModuli, got)
		} else {
			prevModuli = got
		}
		if i > 0 && e.Report.NodesReused > 0 {
			reusedSomewhere = true
		}
	}
	if !reusedSomewhere {
		t.Error("no entry after the first reused any product-tree nodes")
	}

	// Terminal equivalence: every modulus the study's batch GCD factored
	// must be factored in the final snapshot, and the totals must agree —
	// the incremental path found exactly the shared-prime set, no more.
	final := entries[len(entries)-1].Snapshot
	moduli, _ := s.Store.DistinctModuli()
	if got := final.Moduli(); got != len(moduli) {
		t.Errorf("final snapshot has %d moduli, corpus has %d", got, len(moduli))
	}
	factoredIdx := make(map[int]bool, len(s.Factored))
	for _, r := range s.Factored {
		factoredIdx[r.Index] = true
	}
	for idx := range factoredIdx {
		if v := final.Check(moduli[idx]); v.Status != keycheck.StatusFactored || !v.Known {
			t.Fatalf("modulus %d factored by the study but %q/%v in the final snapshot",
				idx, v.Status, v.Known)
		}
	}
	if got := final.Factored(); got != len(factoredIdx) {
		t.Errorf("final snapshot factored %d, study factored %d", got, len(factoredIdx))
	}
	// Spot-check the complement: a modulus the GCD did not factor stays
	// clean but known.
	for idx := range moduli {
		if !factoredIdx[idx] {
			if v := final.Check(moduli[idx]); v.Status != keycheck.StatusClean || !v.Known {
				t.Fatalf("unfactored modulus %d = %q/%v, want clean/known", idx, v.Status, v.Known)
			}
			break
		}
	}
}

// Package core wires the full study together: it simulates the device
// ecosystem, harvests six years of scan snapshots, runs the (optionally
// cluster-partitioned) batch GCD over every distinct RSA modulus,
// fingerprints implementations, and exposes the longitudinal analysis —
// the complete pipeline of Hastings, Fried and Heninger's IMC 2016
// measurement, end to end.
//
// Typical use:
//
//	study, err := core.Run(ctx, core.Options{})
//	...
//	study.Table1(os.Stdout)
//	study.Figure(os.Stdout, 3) // the Juniper time series
package core

import (
	"context"
	"fmt"
	"math/big"

	"github.com/factorable/weakkeys/internal/analysis"
	"github.com/factorable/weakkeys/internal/batchgcd"
	"github.com/factorable/weakkeys/internal/distgcd"
	"github.com/factorable/weakkeys/internal/fingerprint"
	"github.com/factorable/weakkeys/internal/population"
	"github.com/factorable/weakkeys/internal/scanstore"
)

// Options configures a study run. The zero value runs the full-scale
// default study.
type Options struct {
	// Seed drives every random choice; same seed, same study.
	Seed int64
	// KeyBits is the RSA modulus size (default 256; see DESIGN.md).
	KeyBits int
	// Scale multiplies all population curves (default 1.0).
	Scale float64
	// Subsets selects the batch GCD flavour: 0 or 1 runs the plain
	// single-tree algorithm; >= 2 runs the paper's k-subset
	// cluster-partitioned variant (the paper used k = 16).
	Subsets int
	// MITMRate enables the Internet Rimon middlebox simulation.
	MITMRate float64
	// BitErrorRate enables transmission bit errors.
	BitErrorRate float64
	// OtherProtocols adds the SSH/POP3S/IMAPS/SMTPS corpora (Table 4).
	OtherProtocols bool
	// IPReuse is the probability that a new device takes over a retired
	// device's address (drives the IP-churn ambiguity in transition
	// analysis). Negative disables; zero selects the default 0.3.
	IPReuse float64
	// Lines overrides the simulated ecosystem (defaults to the full
	// vendor set from the paper's figures).
	Lines []population.Line
}

// Study is a completed pipeline run.
type Study struct {
	Opts Options
	// Store holds every host record and distinct certificate/modulus.
	Store *scanstore.Store
	// Sim is the generating simulation (ground truth for validation).
	Sim *population.Simulation
	// Factored is the raw batch GCD output over all distinct moduli.
	Factored []batchgcd.Result
	// GCDStats reports the distributed-run cost profile (Subsets >= 2).
	GCDStats distgcd.Stats
	// Fingerprint is the Section 3.3 implementation analysis.
	Fingerprint *fingerprint.Result
	// Analyzer answers the longitudinal queries.
	Analyzer *analysis.Analyzer
}

// Run executes the full pipeline.
func Run(ctx context.Context, opts Options) (*Study, error) {
	if opts.Scale == 0 {
		opts.Scale = 1.0
	}
	if opts.KeyBits == 0 {
		opts.KeyBits = 256
	}
	switch {
	case opts.IPReuse < 0:
		opts.IPReuse = 0
	case opts.IPReuse == 0:
		opts.IPReuse = 0.3
	}
	s := &Study{Opts: opts, Store: scanstore.New()}

	// Phase 1: ecosystem simulation + scan harvesting (the substitution
	// for the EFF/P&Q/Ecosystem/Rapid7/Censys corpora).
	sim, err := population.New(population.Config{
		Seed:           opts.Seed,
		KeyBits:        opts.KeyBits,
		Scale:          opts.Scale,
		Lines:          opts.Lines,
		MITMRate:       opts.MITMRate,
		BitErrorRate:   opts.BitErrorRate,
		OtherProtocols: opts.OtherProtocols,
		IPReuse:        opts.IPReuse,
	})
	if err != nil {
		return nil, fmt.Errorf("core: simulation: %w", err)
	}
	s.Sim = sim
	if err := sim.Run(s.Store); err != nil {
		return nil, fmt.Errorf("core: scan harvest: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	cliqueVendors := make(map[string]string)
	if cl := sim.Factory().Clique("IBM"); cl != nil {
		// Analyst knowledge: the 2012 disclosure identified the IBM
		// nine-prime pool, so the study labels those moduli IBM even
		// though the certificates only name customers.
		for _, p := range cl.Primes() {
			cliqueVendors[p.String()] = "IBM"
		}
	}
	var extraIPKeys []string
	if n := sim.MITMModulus(); n != nil {
		extraIPKeys = append(extraIPKeys, string(n.Bytes()))
	}
	if err := s.analyze(ctx, cliqueVendors, extraIPKeys); err != nil {
		return nil, err
	}
	return s, nil
}

// AnalyzeStore runs the factoring, fingerprinting and longitudinal
// phases over an existing scan corpus (for example one reloaded with
// scanstore.Load) without simulating an ecosystem. Options fields that
// configure the simulation are ignored; Subsets and KeyBits apply.
// Without analyst clique knowledge, detected cliques are attributed by
// the majority-label fallback only.
func AnalyzeStore(ctx context.Context, store *scanstore.Store, opts Options) (*Study, error) {
	if opts.KeyBits == 0 {
		opts.KeyBits = 256
	}
	s := &Study{Opts: opts, Store: store}
	if err := s.analyze(ctx, nil, nil); err != nil {
		return nil, err
	}
	return s, nil
}

// analyze runs phases 2-4: batch GCD, fingerprinting, analysis.
func (s *Study) analyze(ctx context.Context, cliqueVendors map[string]string, extraIPKeys []string) error {
	opts := s.Opts
	// Phase 2: batch GCD over every distinct modulus ever observed.
	moduli, keys := s.Store.DistinctModuli()
	if opts.Subsets >= 2 {
		results, stats, err := distgcd.Run(ctx, moduli, distgcd.Options{Subsets: opts.Subsets})
		if err != nil {
			return fmt.Errorf("core: distributed batch GCD: %w", err)
		}
		s.Factored, s.GCDStats = results, stats
	} else {
		results, err := batchgcd.Factor(moduli)
		if err != nil {
			return fmt.Errorf("core: batch GCD: %w", err)
		}
		s.Factored = results
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	// Phase 3: fingerprint implementations.
	divisors := make(map[string]*big.Int, len(s.Factored))
	for _, r := range s.Factored {
		divisors[keys[r.Index]] = r.Divisor
	}
	ipCount := make(map[string]int)
	for key := range divisors {
		ipCount[key] = len(s.Store.IPsServingModulus(key, ""))
	}
	for _, key := range extraIPKeys {
		ipCount[key] = len(s.Store.IPsServingModulus(key, ""))
	}
	s.Fingerprint = fingerprint.Analyze(fingerprint.Input{
		Certs:         s.Store.DistinctCerts(),
		Divisors:      divisors,
		IPCount:       ipCount,
		CliqueVendors: cliqueVendors,
		ModulusBits:   opts.KeyBits,
	})

	// Phase 4: longitudinal analysis over the factored (bit-error-
	// excluded) vulnerable set.
	vuln := make(map[string]bool, len(s.Fingerprint.Factors))
	for key := range s.Fingerprint.Factors {
		vuln[key] = true
	}
	s.Analyzer = analysis.New(s.Store, s.Fingerprint.Labels, vuln)
	excluded := make(map[string]bool, len(s.Fingerprint.BitErrors))
	for _, be := range s.Fingerprint.BitErrors {
		excluded[be.ModKey] = true
	}
	s.Analyzer.ExcludeModuli(excluded)
	return nil
}

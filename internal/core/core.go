// Package core wires the full study together: it simulates the device
// ecosystem, harvests six years of scan snapshots, runs the (optionally
// cluster-partitioned) batch GCD over every distinct RSA modulus,
// fingerprints implementations, and exposes the longitudinal analysis —
// the complete pipeline of Hastings, Fried and Heninger's IMC 2016
// measurement, end to end.
//
// The run is composed of named internal/pipeline stages — Simulate,
// Harvest, Dedup, BatchGCD, Fingerprint, Analyze — executed under one
// context. Every stage honours cancellation (the math kernels check it
// mid-computation, per product-tree level) and records per-stage stats;
// the accumulated RunReport is returned on the Study and printed by
// `weakkeys -metrics`.
//
// Typical use:
//
//	study, err := core.Run(ctx, core.Options{})
//	...
//	study.Table1(os.Stdout)
//	study.Figure(os.Stdout, 3) // the Juniper time series
package core

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"time"

	"github.com/factorable/weakkeys/internal/analysis"
	"github.com/factorable/weakkeys/internal/anomaly"
	"github.com/factorable/weakkeys/internal/batchgcd"
	"github.com/factorable/weakkeys/internal/distgcd"
	"github.com/factorable/weakkeys/internal/faults"
	"github.com/factorable/weakkeys/internal/fingerprint"
	"github.com/factorable/weakkeys/internal/kernel"
	"github.com/factorable/weakkeys/internal/pipeline"
	"github.com/factorable/weakkeys/internal/population"
	"github.com/factorable/weakkeys/internal/scanstore"
	"github.com/factorable/weakkeys/internal/telemetry"
)

// Stage names, in execution order. Run composes all six; AnalyzeStore
// composes the last four over a pre-existing corpus.
const (
	StageSimulate    = "Simulate"
	StageHarvest     = "Harvest"
	StageDedup       = "Dedup"
	StageBatchGCD    = "BatchGCD"
	StageFingerprint = "Fingerprint"
	StageAnalyze     = "Analyze"
	// StageAnomaly is the optional seventh stage (Options.Anomalies): the
	// beyond-batch-GCD pass over the corpus — shared-modulus graph,
	// exponent census, Fermat and small-factor probes.
	StageAnomaly = "Anomaly"
)

// Options configures a study run. The zero value runs the full-scale
// default study.
type Options struct {
	// Seed drives every random choice; same seed, same study.
	Seed int64
	// KeyBits is the RSA modulus size (default 256; see DESIGN.md).
	KeyBits int
	// Scale multiplies all population curves (default 1.0).
	Scale float64
	// Subsets selects the batch GCD flavour: 0 or 1 runs the plain
	// single-tree algorithm; >= 2 runs the paper's k-subset
	// cluster-partitioned variant (the paper used k = 16).
	Subsets int
	// MITMRate enables the Internet Rimon middlebox simulation.
	MITMRate float64
	// BitErrorRate enables transmission bit errors.
	BitErrorRate float64
	// OtherProtocols adds the SSH/POP3S/IMAPS/SMTPS corpora (Table 4).
	OtherProtocols bool
	// IPReuse is the probability that a new device takes over a retired
	// device's address (drives the IP-churn ambiguity in transition
	// analysis). Negative disables; zero selects the default 0.3.
	IPReuse float64
	// Lines overrides the simulated ecosystem (defaults to the full
	// vendor set from the paper's figures).
	Lines []population.Line
	// Progress, when set, receives the pipeline stage events (start,
	// done, error per stage) synchronously on the running goroutine.
	Progress pipeline.ProgressFunc
	// HarvestProgress, when set, is called after each simulated month of
	// the Harvest stage with (monthsDone, monthsTotal).
	HarvestProgress func(done, total int)
	// Telemetry, when set, is the shared metrics registry every layer
	// records into: the pipeline mirrors per-stage stats, the simulation
	// its per-month rates, distgcd its per-node ledger, and core its
	// corpus-level gauges. Serve it live with telemetry.ListenAndServe.
	Telemetry *telemetry.Registry
	// Tracer, when set, records nested spans (pipeline → stage → months
	// and batch-GCD nodes) exportable as Chrome trace_event JSON.
	Tracer *telemetry.Tracer
	// Events, when set, is the structured event log the run narrates
	// into: per-stage lifecycle events from the pipeline runner and the
	// distgcd supervisor's crash/reassign/straggler incidents, all
	// inspectable live via /debug/events or post mortem via a bundle.
	Events *telemetry.EventLog
	// GCDFaults, when set (and Subsets >= 2), injects node failures into
	// the distributed batch GCD for chaos testing. The supervisor
	// reassigns dead nodes' subsets; if a subset is abandoned anyway the
	// run degrades to partial results recorded on Study.GCDPartial
	// instead of failing the pipeline.
	GCDFaults *faults.NodePlan
	// GCDStragglerTimeout, when > 0, arms the distributed GCD's
	// speculative re-execution of straggling nodes.
	GCDStragglerTimeout time.Duration
	// GCDMaxReassign is passed through to distgcd.Options.MaxReassign
	// (0 = default, negative disables reassignment).
	GCDMaxReassign int
	// Anomalies enables the Anomaly stage: the shared-modulus graph,
	// exponent census, and Fermat/small-factor probe sweep over the
	// corpus, recorded on Study.Anomaly. Off by default — the probe sweep
	// touches every distinct modulus.
	Anomalies bool
	// AnomalyProbe sets the per-modulus factoring budgets for the Anomaly
	// stage (zero value: the anomaly package defaults).
	AnomalyProbe anomaly.Probe
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if o.KeyBits == 0 {
		o.KeyBits = 256
	}
	switch {
	case o.IPReuse < 0:
		o.IPReuse = 0
	case o.IPReuse == 0:
		o.IPReuse = 0.3
	}
	return o
}

// Study is a completed pipeline run.
type Study struct {
	Opts Options
	// Store holds every host record and distinct certificate/modulus.
	Store *scanstore.Store
	// Sim is the generating simulation (ground truth for validation).
	Sim *population.Simulation
	// Factored is the raw batch GCD output over all distinct moduli.
	Factored []batchgcd.Result
	// GCDStats reports the distributed-run cost profile (Subsets >= 2).
	GCDStats distgcd.Stats
	// GCDPartial, when non-nil, records the subsets the distributed GCD
	// abandoned after node failures: Factored is then a lower bound on
	// the vulnerable set rather than exact.
	GCDPartial *distgcd.PartialError
	// Fingerprint is the Section 3.3 implementation analysis.
	Fingerprint *fingerprint.Result
	// Analyzer answers the longitudinal queries.
	Analyzer *analysis.Analyzer
	// Anomaly is the beyond-GCD pass result (Options.Anomalies only).
	Anomaly *anomaly.Report
	// Report is the per-stage cost profile of the run.
	Report *pipeline.RunReport
}

// Run executes the full pipeline.
func Run(ctx context.Context, opts Options) (*Study, error) {
	opts = opts.withDefaults()
	s := &Study{Opts: opts, Store: scanstore.New()}

	// Analyst knowledge flows from the Harvest stage into Fingerprint:
	// the 2012 disclosure identified the IBM nine-prime pool, so the
	// study labels those moduli IBM even though the certificates only
	// name customers; the middlebox modulus gets its IP count tracked.
	var cliqueVendors map[string]string
	var extraIPKeys []string

	stages := []pipeline.Stage{
		{Name: StageSimulate, Run: func(ctx context.Context, st *pipeline.Stats) error {
			// The substitution for the EFF/P&Q/Ecosystem/Rapid7/Censys
			// corpora: a generative device-ecosystem model.
			sim, err := population.New(population.Config{
				Seed:           opts.Seed,
				KeyBits:        opts.KeyBits,
				Scale:          opts.Scale,
				Lines:          opts.Lines,
				MITMRate:       opts.MITMRate,
				BitErrorRate:   opts.BitErrorRate,
				OtherProtocols: opts.OtherProtocols,
				IPReuse:        opts.IPReuse,
				Progress:       opts.HarvestProgress,
				Metrics:        opts.Telemetry,
			})
			if err != nil {
				return fmt.Errorf("core: simulation: %w", err)
			}
			s.Sim = sim
			st.ItemsOut = int64(len(sim.Lines()))
			return nil
		}},
		{Name: StageHarvest, Run: func(ctx context.Context, st *pipeline.Stats) error {
			if err := s.Sim.Run(ctx, s.Store); err != nil {
				return fmt.Errorf("core: scan harvest: %w", err)
			}
			cliqueVendors = make(map[string]string)
			if cl := s.Sim.Factory().Clique("IBM"); cl != nil {
				for _, p := range cl.Primes() {
					cliqueVendors[p.String()] = "IBM"
				}
			}
			if n := s.Sim.MITMModulus(); n != nil {
				extraIPKeys = append(extraIPKeys, string(n.Bytes()))
			}
			st.ItemsOut = int64(s.Store.Stats("").HostRecords)
			return nil
		}},
	}
	stages = append(stages, s.analysisStages(&cliqueVendors, &extraIPKeys)...)
	runner := &pipeline.Runner{Progress: opts.Progress, Metrics: opts.Telemetry, Tracer: opts.Tracer, Events: opts.Events}
	report, err := runner.Run(ctx, stages...)
	s.Report = report
	s.publishCorpusGauges()
	if err != nil {
		// The partial study — with the report of every stage that ran —
		// comes back alongside the error so a cancelled or failed run
		// can still print its cost profile.
		return s, err
	}
	return s, nil
}

// publishCorpusGauges mirrors the study's corpus-level totals into the
// registry after a run (complete or partial).
func (s *Study) publishCorpusGauges() {
	reg := s.Opts.Telemetry
	if reg == nil {
		return
	}
	if s.Store != nil {
		reg.Gauge("core_host_records").Set(float64(s.Store.Stats("").HostRecords))
	}
	reg.Gauge("core_factored_moduli").Set(float64(len(s.Factored)))
	if s.Fingerprint != nil {
		reg.Gauge("core_fingerprint_labels").Set(float64(len(s.Fingerprint.Labels)))
	}
	if s.Report != nil {
		reg.Gauge("core_pipeline_wall_seconds").Set(s.Report.Wall.Seconds())
		reg.Gauge("core_pipeline_cpu_seconds").Set(s.Report.CPU.Seconds())
	}
	// The math stages all execute on the shared kernel pool; surface its
	// cost ledger next to the pipeline's.
	kernel.Default().Publish(reg)
	reg.Counter("core_runs_total").Inc()
}

// AnalyzeStore runs the factoring, fingerprinting and longitudinal
// phases over an existing scan corpus (for example one reloaded with
// scanstore.Load) without simulating an ecosystem. Options fields that
// configure the simulation are ignored; Subsets, KeyBits and Progress
// apply. Without analyst clique knowledge, detected cliques are
// attributed by the majority-label fallback only.
func AnalyzeStore(ctx context.Context, store *scanstore.Store, opts Options) (*Study, error) {
	if opts.KeyBits == 0 {
		opts.KeyBits = 256
	}
	s := &Study{Opts: opts, Store: store}
	var noCliques map[string]string
	var noExtra []string
	runner := &pipeline.Runner{Progress: opts.Progress, Metrics: opts.Telemetry, Tracer: opts.Tracer, Events: opts.Events}
	report, err := runner.Run(ctx, s.analysisStages(&noCliques, &noExtra)...)
	s.Report = report
	s.publishCorpusGauges()
	if err != nil {
		return s, err
	}
	return s, nil
}

// analysisStages composes phases 2-4 — Dedup, BatchGCD, Fingerprint,
// Analyze — over s.Store. cliqueVendors and extraIPKeys are pointers
// because the values are produced by the Harvest stage after the stage
// list is built.
func (s *Study) analysisStages(cliqueVendors *map[string]string, extraIPKeys *[]string) []pipeline.Stage {
	opts := s.Opts
	// Dedup output, consumed by BatchGCD and Fingerprint.
	var moduli []*big.Int
	var keys []string
	stages := []pipeline.Stage{
		{Name: StageDedup, Run: func(ctx context.Context, st *pipeline.Stats) error {
			// The corpus ingest dedup: every distinct modulus ever
			// observed, in first-seen order (the paper's 81M distinct
			// moduli out of hundreds of millions of host records).
			st.ItemsIn = int64(s.Store.Stats("").HostRecords)
			moduli, keys = s.Store.DistinctModuli()
			st.ItemsOut = int64(len(moduli))
			for _, m := range moduli {
				st.Bytes += int64(len(m.Bits())) * int64(wordBytes)
			}
			return nil
		}},
		{Name: StageBatchGCD, Run: func(ctx context.Context, st *pipeline.Stats) error {
			if opts.Subsets >= 2 {
				results, stats, err := distgcd.Run(ctx, moduli, distgcd.Options{
					Subsets:          opts.Subsets,
					Metrics:          opts.Telemetry,
					Events:           opts.Events,
					Faults:           opts.GCDFaults,
					StragglerTimeout: opts.GCDStragglerTimeout,
					MaxReassign:      opts.GCDMaxReassign,
				})
				// A partial run (some subsets abandoned after node
				// failures) is degraded data, not a failed pipeline: keep
				// the surviving results and record what was lost.
				var partial *distgcd.PartialError
				if err != nil && !errors.As(err, &partial) {
					return fmt.Errorf("core: distributed batch GCD: %w", err)
				}
				s.Factored, s.GCDStats, s.GCDPartial = results, stats, partial
				st.ItemsIn, st.ItemsOut, st.Bytes = stats.ItemsIn, stats.ItemsOut, stats.Bytes
			} else {
				results, err := batchgcd.FactorCtx(ctx, moduli)
				if err != nil {
					return fmt.Errorf("core: batch GCD: %w", err)
				}
				s.Factored = results
				st.ItemsIn, st.ItemsOut = int64(len(moduli)), int64(len(results))
			}
			return nil
		}},
		{Name: StageFingerprint, Run: func(ctx context.Context, st *pipeline.Stats) error {
			divisors := make(map[string]*big.Int, len(s.Factored))
			for _, r := range s.Factored {
				divisors[keys[r.Index]] = r.Divisor
			}
			ipCount := make(map[string]int)
			for key := range divisors {
				ipCount[key] = len(s.Store.IPsServingModulus(key, ""))
			}
			for _, key := range *extraIPKeys {
				ipCount[key] = len(s.Store.IPsServingModulus(key, ""))
			}
			certs := s.Store.DistinctCerts()
			st.ItemsIn = int64(len(certs))
			s.Fingerprint = fingerprint.Analyze(fingerprint.Input{
				Certs:         certs,
				Divisors:      divisors,
				IPCount:       ipCount,
				CliqueVendors: *cliqueVendors,
				ModulusBits:   opts.KeyBits,
			})
			st.ItemsOut = int64(len(s.Fingerprint.Labels))
			return nil
		}},
		{Name: StageAnalyze, Run: func(ctx context.Context, st *pipeline.Stats) error {
			// Longitudinal analysis over the factored (bit-error-
			// excluded) vulnerable set.
			vuln := make(map[string]bool, len(s.Fingerprint.Factors))
			for key := range s.Fingerprint.Factors {
				vuln[key] = true
			}
			st.ItemsIn = int64(len(vuln))
			s.Analyzer = analysis.New(s.Store, s.Fingerprint.Labels, vuln)
			excluded := make(map[string]bool, len(s.Fingerprint.BitErrors))
			for _, be := range s.Fingerprint.BitErrors {
				excluded[be.ModKey] = true
			}
			s.Analyzer.ExcludeModuli(excluded)
			st.ItemsOut = st.ItemsIn - int64(len(excluded))
			return nil
		}},
	}
	if opts.Anomalies {
		stages = append(stages, pipeline.Stage{Name: StageAnomaly, Run: func(ctx context.Context, st *pipeline.Stats) error {
			rep, err := anomaly.Analyze(ctx, anomaly.Config{
				Store:   s.Store,
				Probe:   opts.AnomalyProbe,
				Metrics: opts.Telemetry,
				Events:  opts.Events,
			})
			if err != nil {
				return fmt.Errorf("core: anomaly pass: %w", err)
			}
			s.Anomaly = rep
			st.ItemsIn = int64(rep.Moduli)
			st.ItemsOut = int64(rep.SharedCount + rep.FermatWeakCount +
				rep.SmallFactorCount + rep.Exponents.Anomalous())
			return nil
		}})
	}
	return stages
}

const wordBytes = 32 << (^big.Word(0) >> 63) / 8 // 4 or 8

package core

import (
	"context"
	"sort"
	"strings"
	"testing"

	"github.com/factorable/weakkeys/internal/faults"
	"github.com/factorable/weakkeys/internal/telemetry"
)

// chaosOpts is a small, fast study configuration shared by the chaos
// tests; each test overlays its own fault plan.
func chaosOpts() Options {
	return Options{Seed: 7, KeyBits: 128, Scale: 0.1, Subsets: 3}
}

// vulnSet is the study's vulnerable-moduli outcome in canonical form.
func vulnSet(s *Study) string {
	keys := make([]string, 0, len(s.Fingerprint.Factors))
	for k := range s.Fingerprint.Factors {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// TestChaosStudyMatchesFaultFree is the E2E acceptance for the GCD half
// of the fault plan: a full study with a cluster node crashing
// mid-reduce must emit exactly the vulnerable-moduli set the fault-free
// study does, with the recovery visible in the telemetry registry.
func TestChaosStudyMatchesFaultFree(t *testing.T) {
	clean, err := Run(context.Background(), chaosOpts())
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.New()
	opts := chaosOpts()
	opts.GCDFaults = faults.NewNodePlan().
		Crash(1, faults.PhaseReduce).
		Crash(2, faults.PhaseBuild)
	opts.Telemetry = reg
	chaos, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("study with recoverable node crashes failed: %v", err)
	}
	if chaos.GCDPartial != nil {
		t.Fatalf("recoverable crashes left partial results: %v", chaos.GCDPartial)
	}
	if vulnSet(chaos) != vulnSet(clean) {
		t.Errorf("chaos study vulnerable set (%d moduli) differs from fault-free (%d)",
			len(chaos.Fingerprint.Factors), len(clean.Fingerprint.Factors))
	}
	if chaos.GCDStats.Reassigned != 2 {
		t.Errorf("GCDStats.Reassigned = %d, want 2", chaos.GCDStats.Reassigned)
	}
	if v := reg.CounterValue("distgcd_node_reassignments_total"); v != 2 {
		t.Errorf("distgcd_node_reassignments_total = %d, want 2", v)
	}
}

// TestChaosStudyDegradesToPartial verifies graceful degradation end to
// end: with reassignment disabled, a node crash loses its subset but
// the pipeline still completes, reporting what is missing.
func TestChaosStudyDegradesToPartial(t *testing.T) {
	clean, err := Run(context.Background(), chaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts := chaosOpts()
	opts.GCDFaults = faults.NewNodePlan().Crash(0, faults.PhaseReduce)
	opts.GCDMaxReassign = -1
	partial, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("partial GCD must not fail the pipeline: %v", err)
	}
	if partial.GCDPartial == nil {
		t.Fatal("GCDPartial not recorded")
	}
	if partial.GCDStats.LostSubsets != 1 {
		t.Errorf("LostSubsets = %d, want 1", partial.GCDStats.LostSubsets)
	}
	// Degraded, not wrong: every factored modulus in the partial run is
	// also factored in the full run (a lower bound on the vulnerable set).
	full := make(map[string]bool, len(clean.Fingerprint.Factors))
	for k := range clean.Fingerprint.Factors {
		full[k] = true
	}
	for k := range partial.Fingerprint.Factors {
		if !full[k] {
			t.Error("partial run reported a modulus the full run did not factor")
		}
	}
	if len(partial.Fingerprint.Factors) >= len(clean.Fingerprint.Factors) {
		t.Errorf("losing a subset should shrink the factored set: partial %d, full %d",
			len(partial.Fingerprint.Factors), len(clean.Fingerprint.Factors))
	}
	if partial.Analyzer == nil {
		t.Error("analysis stage should still run on the partial set")
	}
}

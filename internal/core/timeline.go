package core

import (
	"context"
	"fmt"
	"time"

	"github.com/factorable/weakkeys/internal/fingerprint"
	"github.com/factorable/weakkeys/internal/keycheck"
)

// TimelineEntry is one scan date's point-in-time check index.
type TimelineEntry struct {
	Date time.Time
	// Snapshot answers "what would the check service have said after
	// this scan landed?" — it indexes every observation up to and
	// including Date.
	Snapshot *keycheck.Snapshot
	// Report is the ingest ledger for this date's delta.
	Report keycheck.IngestReport
}

// SnapshotTimeline replays the study's scan dates through the
// incremental-ingest path: starting from an empty index, each date's
// observations are folded in as a delta, yielding one queryable
// snapshot per scan. This is the longitudinal serving loop — the paper
// re-ran its batch GCD on every monthly snapshot; here month N+1 costs
// only its delta, with each snapshot sharing untouched shards and
// product-tree prefixes with its predecessor.
//
// Primes are discovered as the replay reaches them (a key is "weak" only
// once its mate has been observed), so early snapshots legitimately call
// clean what the full study later factors. Vendor labels come from the
// study's fingerprint pass. shards <= 0 selects keycheck.DefaultShards.
func SnapshotTimeline(ctx context.Context, study *Study, shards int) ([]TimelineEntry, error) {
	if study == nil || study.Store == nil {
		return nil, fmt.Errorf("core: timeline: nil study or store")
	}
	if shards <= 0 {
		shards = keycheck.DefaultShards
	}
	// Labels only: handing Ingest the study's factor table would leak
	// future GCD results into past snapshots. Each month must rediscover
	// shared primes from what it has seen so far.
	var labels *fingerprint.Result
	if study.Fingerprint != nil {
		labels = &fingerprint.Result{Labels: study.Fingerprint.Labels}
	}
	snap := keycheck.Empty(shards)
	dates := study.Store.ScanDates("")
	out := make([]TimelineEntry, 0, len(dates))
	for _, d := range dates {
		delta := study.Store.DeltaOn(d, "")
		next, rep, err := snap.Ingest(ctx, keycheck.BuildInput{
			Store:       delta,
			Fingerprint: labels,
			Shards:      shards,
		})
		if err != nil {
			return out, fmt.Errorf("core: timeline %s: %w", d.Format("2006-01-02"), err)
		}
		snap = next
		out = append(out, TimelineEntry{Date: d, Snapshot: snap, Report: rep})
	}
	if reg := study.Opts.Telemetry; reg != nil && len(out) > 0 {
		reg.Gauge("core_timeline_snapshots").Set(float64(len(out)))
		last := out[len(out)-1]
		reg.Gauge("core_timeline_final_moduli").Set(float64(last.Snapshot.Moduli()))
		reg.Gauge("core_timeline_final_factored").Set(float64(last.Snapshot.Factored()))
	}
	return out, nil
}

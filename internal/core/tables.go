package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/factorable/weakkeys/internal/analysis"
	"github.com/factorable/weakkeys/internal/anomaly"
	"github.com/factorable/weakkeys/internal/devices"
	"github.com/factorable/weakkeys/internal/disclosure"
	"github.com/factorable/weakkeys/internal/report"
	"github.com/factorable/weakkeys/internal/scanstore"
)

// Table renders the numbered paper table (1-5).
func (s *Study) Table(w io.Writer, n int) error {
	switch n {
	case 1:
		return s.Table1(w)
	case 2:
		return s.Table2(w)
	case 3:
		return s.Table3(w)
	case 4:
		return s.Table4(w)
	case 5:
		return s.Table5(w)
	default:
		return fmt.Errorf("core: no table %d in the paper", n)
	}
}

// Table1 is the dataset summary (paper Table 1).
func (s *Study) Table1(w io.Writer) error {
	cs := s.Analyzer.CorpusStats()
	rows := [][]string{
		{"HTTPS host records", report.Itoa(cs.HTTPSHostRecords)},
		{"Distinct HTTPS certificates", report.Itoa(cs.DistinctHTTPSCerts)},
		{"Distinct HTTPS moduli", report.Itoa(cs.DistinctHTTPSModuli)},
		{"Total distinct RSA moduli", report.Itoa(cs.TotalDistinctModuli)},
		{"Vulnerable RSA moduli", fmt.Sprintf("%d (%s of distinct)", cs.VulnerableModuli, report.Pct(cs.VulnerableModuli, cs.TotalDistinctModuli))},
		{"Vulnerable HTTPS host records", report.Itoa(cs.VulnerableRecords)},
		{"Vulnerable HTTPS certificates", report.Itoa(cs.VulnerableCerts)},
	}
	return report.Table(w, "Table 1: dataset summary", []string{"Quantity", "Value"}, rows)
}

// Table2 is the 2012 vendor notification outcome (paper Table 2).
func (s *Study) Table2(w io.Writer) error {
	byCat := make(map[devices.ResponseCategory][]string)
	for _, v := range devices.Notified2012() {
		byCat[v.Response] = append(byCat[v.Response], v.Name)
	}
	var rows [][]string
	for _, cat := range []devices.ResponseCategory{devices.PublicAdvisory,
		devices.PrivateResponse, devices.AutoResponse, devices.NoResponse} {
		names := byCat[cat]
		sort.Strings(names)
		for i, n := range names {
			label := ""
			if i == 0 {
				label = fmt.Sprintf("%s (%d)", cat, len(names))
			}
			rows = append(rows, []string{label, n})
		}
	}
	return report.Table(w, "Table 2: vendor responses to the 2012 notification (37 vendors)",
		[]string{"Response", "Vendor"}, rows)
}

// Table3 compares the earliest and latest scans (paper Table 3).
func (s *Study) Table3(w io.Writer) error {
	dates := s.Store.ScanDates(scanstore.HTTPS)
	if len(dates) == 0 {
		return fmt.Errorf("core: no scans in store")
	}
	row := func(d time.Time) (records, certs, keys int) {
		cseen := make(map[[32]byte]bool)
		kseen := make(map[string]bool)
		for _, r := range s.Store.RecordsOn(d, scanstore.HTTPS) {
			records++
			cseen[r.CertFP] = true
			kseen[r.ModKey] = true
		}
		return records, len(cseen), len(kseen)
	}
	first, last := dates[0], dates[len(dates)-1]
	fr, fc, fk := row(first)
	lr, lc, lk := row(last)
	rows := [][]string{
		{"TLS handshakes", report.Itoa(fr), report.Itoa(lr)},
		{"Distinct certificates", report.Itoa(fc), report.Itoa(lc)},
		{"Distinct RSA keys", report.Itoa(fk), report.Itoa(lk)},
	}
	return report.Table(w, "Table 3: earliest vs latest scan",
		[]string{"Quantity", first.Format("2006-01 (EFF)"), last.Format("2006-01 (Censys)")}, rows)
}

// Table4 is the per-protocol breakdown (paper Table 4).
func (s *Study) Table4(w io.Writer) error {
	protos := []scanstore.Protocol{scanstore.HTTPS, scanstore.SSH,
		scanstore.POP3S, scanstore.IMAPS, scanstore.SMTPS}
	var rows [][]string
	for _, ps := range s.Analyzer.ProtocolBreakdown(protos) {
		date := "-"
		if !ps.ScanDate.IsZero() {
			date = ps.ScanDate.Format("2006-01-02")
		}
		rows = append(rows, []string{string(ps.Protocol), date,
			report.Itoa(ps.TotalHosts), report.Itoa(ps.VulnerableHosts)})
	}
	return report.Table(w, "Table 4: vulnerable hosts per protocol (latest scan)",
		[]string{"Protocol", "Date scanned", "Hosts with RSA keys", "Vulnerable hosts"}, rows)
}

// Table5 is the OpenSSL-fingerprint classification (paper Table 5),
// measured from factored primes and compared against the registry's
// ground truth.
func (s *Study) Table5(w io.Writer) error {
	var names []string
	for name, vs := range s.Fingerprint.Vendors {
		if vs.PrimesTotal > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var rows [][]string
	for _, name := range names {
		vs := s.Fingerprint.Vendors[name]
		expected := "-"
		if v := devices.ByName(name); v != nil {
			expected = v.OpenSSL.String()
		}
		rows = append(rows, []string{name,
			fmt.Sprintf("%d/%d", vs.PrimesSatisfyingOpenSSL, vs.PrimesTotal),
			vs.OpenSSL.String(), expected})
	}
	return report.Table(w, "Table 5: OpenSSL prime fingerprint by vendor (factored keys only)",
		[]string{"Vendor", "Primes satisfying", "Measured class", "Registry class"}, rows)
}

// Figure renders the numbered paper figure (1, 3-10) as an ASCII chart.
// Figure 2 (the partitioned-algorithm diagram) is reproduced by the
// benchmark harness instead; requesting it prints the distributed-run
// statistics when available.
func (s *Study) Figure(w io.Writer, n int) error {
	const chartHeight = 8
	vendorFig := map[int]string{3: "Juniper", 4: "Innominate", 5: "IBM", 6: "Cisco", 8: "HP"}
	switch {
	case n == 1:
		agg := s.Analyzer.AggregateSeries()
		agg.Name = "Figure 1: HTTPS hosts (total and factorable), all sources"
		return report.SeriesChart(w, agg, chartHeight)
	case n == 2:
		if s.GCDStats.Subsets == 0 {
			fmt.Fprintln(w, "Figure 2: run with Subsets >= 2 (or see BenchmarkFigure2PartitionedVsPlain) for the partitioned batch GCD cost profile")
			return nil
		}
		fmt.Fprintf(w, "Figure 2: partitioned batch GCD (k=%d over %d moduli)\n  wall %v, total CPU %v, peak per-node tree %d bytes\n",
			s.GCDStats.Subsets, s.GCDStats.ItemsIn, s.GCDStats.Wall, s.GCDStats.CPU, s.GCDStats.Bytes)
		return nil
	case vendorFig[n] != "":
		v := vendorFig[n]
		series := s.Analyzer.VendorSeries(v, "")
		series.Name = fmt.Sprintf("Figure %d: %s hosts (total and vulnerable)", n, v)
		return report.SeriesChart(w, series, chartHeight)
	case n == 7:
		fmt.Fprintln(w, "Figure 7: Cisco small-business models vs end-of-life announcements")
		for _, m := range devices.CiscoModels {
			series := s.Analyzer.VendorSeries("Cisco", m.Model)
			series.Name = fmt.Sprintf("%s (EOL %s)", m.Model, m.EOL)
			if err := report.SeriesChart(w, series, 4); err != nil {
				return err
			}
		}
		return nil
	case n == 9:
		fmt.Fprintln(w, "Figure 9: vendors that never responded")
		for _, v := range []string{"Thomson", "Fritz!Box", "Linksys", "Fortinet",
			"ZyXEL", "Dell", "Kronos", "Xerox", "McAfee", "TP-LINK"} {
			series := s.Analyzer.VendorSeries(v, "")
			series.Name = v
			if err := report.SeriesChart(w, series, 4); err != nil {
				return err
			}
		}
		return nil
	case n == 10:
		fmt.Fprintln(w, "Figure 10: newly vulnerable products since 2012")
		for _, v := range []string{"ADTRAN", "D-Link", "Huawei", "Sangfor", "Schmid Telecom"} {
			series := s.Analyzer.VendorSeries(v, "")
			series.Name = v
			if err := report.SeriesChart(w, series, 4); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("core: no figure %d in the paper", n)
	}
}

// VendorSeries is a convenience passthrough for examples.
func (s *Study) VendorSeries(vendor, model string) analysis.Series {
	return s.Analyzer.VendorSeries(vendor, model)
}

// Sources prints the Section 3.1 data-source accounting.
func (s *Study) Sources(w io.Writer) error {
	var rows [][]string
	for _, st := range s.Analyzer.SourceBreakdown() {
		rows = append(rows, []string{
			string(st.Source),
			st.FirstScan.Format("2006-01") + " .. " + st.LastScan.Format("2006-01"),
			report.Itoa(st.Scans),
			report.Itoa(st.HostRecords),
			report.Itoa(st.DistinctCerts),
		})
	}
	return report.Table(w, "Data sources (Section 3.1)",
		[]string{"Source", "Era", "Scans", "Host records", "Distinct certs"}, rows)
}

// ExportCSV writes the aggregate series plus one CSV per labeled vendor
// into dir, for external plotting.
func (s *Study) ExportCSV(dir string) (files int, err error) {
	write := func(name string, series analysis.Series) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := report.SeriesCSV(f, series); err != nil {
			return err
		}
		files++
		return f.Close()
	}
	if err := write("all.csv", s.Analyzer.AggregateSeries()); err != nil {
		return files, err
	}
	for _, vendor := range s.Analyzer.Vendors() {
		name := strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
				return r
			default:
				return '_'
			}
		}, vendor) + ".csv"
		if err := write(name, s.Analyzer.VendorSeries(vendor, "")); err != nil {
			return files, err
		}
	}
	return files, nil
}

// Summary prints the headline findings beyond the numbered tables: the
// largest vulnerable-population drop (the Heartbleed test), the RSA-only
// key-exchange exposure (Section 2.1's 74%), per-vendor transition
// versus replacement behaviour, and the disclosure-campaign aggregates.
func (s *Study) Summary(w io.Writer) error {
	agg := s.Analyzer.AggregateSeries()
	from, to, drop := analysis.LargestVulnDrop(agg)
	fmt.Fprintf(w, "Largest vulnerable-population drop: %d hosts between %s and %s",
		drop, from.Format("2006-01"), to.Format("2006-01"))
	if !from.IsZero() && from.Year() == 2014 && (from.Month() == time.March || from.Month() == time.April) {
		fmt.Fprintf(w, " — the Heartbleed disclosure, as in the paper")
	}
	fmt.Fprintln(w)

	ke := s.Analyzer.KeyExchangeAt(time.Time{})
	fmt.Fprintf(w, "Key exchange (%s scan): %d of %d vulnerable hosts (%.0f%%) support only RSA key exchange — passively decryptable (paper: 74%%)\n",
		ke.Date.Format("2006-01"), ke.RSAOnly, ke.VulnerableHosts, 100*ke.Fraction())

	for _, vendor := range []string{"Juniper", "Innominate", "IBM"} {
		tr := s.Analyzer.Transitions(vendor)
		rep := s.Analyzer.Replacements(vendor)
		fmt.Fprintf(w, "%-10s: %d IPs ever seen, %d ever vulnerable; transitions v->s %d, s->v %d, repeated %d; of the v->s moves %d re-keyed in place vs %d replaced\n",
			vendor, tr.EverTotal, tr.EverVuln, tr.VulnToSafe, tr.SafeToVuln, tr.Multiple,
			rep.PatchedInPlace, rep.Replaced)
	}

	for _, c := range [][]disclosure.Timeline{disclosure.Campaign2012(), disclosure.Campaign2016()} {
		if len(c) == 0 {
			continue
		}
		st := disclosure.Aggregate(c)
		fmt.Fprintf(w, "Disclosure campaign %s: %d vendors notified, %d with discoverable contacts, %d responded, %d advisories, %d patches\n",
			c[0].Campaign, st.Vendors, st.DiscoverableContact, st.Responded, st.Advisories, st.Patches)
	}
	return nil
}

// Anomalies prints the beyond-GCD anomaly report: the weak-key classes
// batch GCD cannot see (shared moduli across identities, broken public
// exponents, Fermat-factorable close primes, small prime factors).
// The run must have been made with Options.Anomalies set.
func (s *Study) Anomalies(w io.Writer) error {
	rep := s.Anomaly
	if rep == nil {
		return fmt.Errorf("core: no anomaly report (run with Options.Anomalies)")
	}
	fmt.Fprintf(w, "Anomalous keys beyond batch GCD (%d distinct moduli, %d certificates, %v):\n",
		rep.Moduli, rep.Certs, rep.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  shared moduli (>=2 identities): %d\n", rep.SharedCount)
	for i, sm := range rep.SharedModuli {
		if i == 3 {
			fmt.Fprintf(w, "    ... and %d more\n", rep.SharedCount-i)
			break
		}
		fmt.Fprintf(w, "    %d identities, %d hosts: %.16s...\n", sm.Count, sm.Hosts, sm.ModulusHex)
	}
	fmt.Fprintf(w, "  Fermat-factorable (close primes): %d\n", rep.FermatWeakCount)
	fmt.Fprintf(w, "  small-factor moduli: %d\n", rep.SmallFactorCount)
	fmt.Fprintf(w, "  exponent census (%d certs, %d anomalous):", rep.Exponents.Total, rep.Exponents.Anomalous())
	for _, cls := range []anomaly.ExponentClass{
		anomaly.ExponentOK, anomaly.ExponentSmall, anomaly.ExponentOne,
		anomaly.ExponentEven, anomaly.ExponentOversized, anomaly.ExponentNonPositive,
	} {
		if n := rep.Exponents.Classes[cls]; n > 0 {
			fmt.Fprintf(w, " %s=%d", cls, n)
		}
	}
	fmt.Fprintln(w)
	return nil
}

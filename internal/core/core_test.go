package core

import (
	"bytes"
	"context"
	"math/big"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/factorable/weakkeys/internal/devices"
	"github.com/factorable/weakkeys/internal/population"
	"github.com/factorable/weakkeys/internal/scanstore"
)

var (
	studyOnce sync.Once
	study     *Study
	studyErr  error
)

// testStudy runs one moderately-sized study shared by every test in the
// package (the pipeline is deterministic, so sharing is safe).
func testStudy(t *testing.T) *Study {
	t.Helper()
	studyOnce.Do(func() {
		study, studyErr = Run(context.Background(), Options{
			Seed:           7,
			KeyBits:        128,
			Scale:          0.25,
			Subsets:        4,
			MITMRate:       0.004,
			BitErrorRate:   0.0004,
			OtherProtocols: true,
		})
	})
	if studyErr != nil {
		t.Fatal(studyErr)
	}
	return study
}

func TestStudyPipelineCompletes(t *testing.T) {
	s := testStudy(t)
	cs := s.Analyzer.CorpusStats()
	if cs.HTTPSHostRecords < 1000 {
		t.Errorf("host records = %d, implausibly few", cs.HTTPSHostRecords)
	}
	if cs.TotalDistinctModuli <= cs.DistinctHTTPSModuli {
		t.Error("other-protocol moduli should add to the total")
	}
	if cs.VulnerableModuli == 0 {
		t.Fatal("no vulnerable moduli factored")
	}
	// The paper factored 0.37% of distinct moduli. Our simulation's
	// vulnerable share is the same order of magnitude (sub-10%).
	frac := float64(cs.VulnerableModuli) / float64(cs.TotalDistinctModuli)
	if frac <= 0 || frac > 0.10 {
		t.Errorf("vulnerable fraction = %.4f, want small", frac)
	}
	if s.GCDStats.Subsets != 4 {
		t.Errorf("distributed stats missing: %+v", s.GCDStats)
	}
}

// truthVulnModKeys returns the ground-truth vulnerable moduli that were
// ever observed by a scan.
func truthVulnModKeys(s *Study) (vuln map[string]bool, observedVulnCerts int) {
	vuln = make(map[string]bool)
	truth := s.Sim.TruthByFP()
	for _, c := range s.Store.DistinctCerts() {
		fp, err := c.Fingerprint()
		if err != nil {
			continue
		}
		tr, ok := truth[fp]
		if !ok || !tr.Vulnerable {
			continue
		}
		observedVulnCerts++
		vuln[c.ModulusKey()] = true
	}
	return vuln, observedVulnCerts
}

func TestBatchGCDRecall(t *testing.T) {
	s := testStudy(t)
	truthVuln, _ := truthVulnModKeys(s)
	found, missed := 0, 0
	for key := range truthVuln {
		if _, ok := s.Fingerprint.Factors[key]; ok {
			found++
		} else {
			missed++
		}
	}
	if found == 0 {
		t.Fatal("batch GCD found none of the ground-truth vulnerable moduli")
	}
	// Misses are possible only for cohort singletons (a cohort whose
	// other members were never deployed or never observed) — a small
	// tail.
	if rate := float64(missed) / float64(found+missed); rate > 0.10 {
		t.Errorf("missed %.1f%% of ground-truth vulnerable moduli", 100*rate)
	}
}

func TestBatchGCDPrecision(t *testing.T) {
	s := testStudy(t)
	truthVuln, _ := truthVulnModKeys(s)
	truth := s.Sim.TruthByFP()
	// Every factored modulus must be ground-truth vulnerable, a
	// bit-error artifact (excluded from Factors), or... nothing else.
	byMod := make(map[string]bool) // modKey -> ground truth vulnerable
	for _, c := range s.Store.DistinctCerts() {
		fp, err := c.Fingerprint()
		if err != nil {
			continue
		}
		if tr, ok := truth[fp]; ok && tr.Vulnerable {
			byMod[c.ModulusKey()] = true
		}
	}
	// Bare-key observations (the SSH host-key corpus) have no
	// certificates, hence no certificate-level ground truth; the
	// vulnerable SSH pool is factored by design. Exempt them.
	hasCert := make(map[string]bool)
	for _, c := range s.Store.DistinctCerts() {
		hasCert[c.ModulusKey()] = true
	}
	falsePos := 0
	for key := range s.Fingerprint.Factors {
		if !hasCert[key] {
			continue
		}
		if !truthVuln[key] && !byMod[key] {
			falsePos++
		}
	}
	if falsePos > 0 {
		t.Errorf("%d factored moduli are not ground-truth vulnerable", falsePos)
	}
}

func TestFingerprintAccuracy(t *testing.T) {
	s := testStudy(t)
	truth := s.Sim.TruthByFP()
	correct, wrong := 0, 0
	for fp, lbl := range s.Fingerprint.Labels {
		tr, ok := truth[fp]
		if !ok {
			continue // bit-error observation; no truth
		}
		if tr.BehindMITM {
			continue // MITM certs carry the victim subject but the ISP key
		}
		if lbl.Vendor == tr.Vendor {
			correct++
		} else {
			wrong++
		}
	}
	if correct == 0 {
		t.Fatal("no labels to score")
	}
	if rate := float64(wrong) / float64(correct+wrong); rate > 0.02 {
		t.Errorf("label error rate %.2f%% (wrong %d / %d)", 100*rate, wrong, correct+wrong)
	}
}

// truthSeries sums the simulation's ground-truth population series over
// every line of a vendor. Scan-sampled series carry binomial noise
// (sigma ~5 at this scale), so shape assertions about the underlying
// population use the truth and only coarse checks use the observations.
func truthSeries(s *Study, vendor string) population.Series {
	var out population.Series
	for li, line := range s.Sim.Lines() {
		if line.Profile.Vendor != vendor && vendor != "" {
			continue
		}
		ts := s.Sim.TruthSeries(li)
		for m := 0; m < population.Months; m++ {
			out.Total[m] += ts.Total[m]
			out.Vuln[m] += ts.Vuln[m]
		}
	}
	return out
}

func TestJuniperShape(t *testing.T) {
	s := testStudy(t)
	truth := truthSeries(s, "Juniper")
	at := func(month string) population.Month { return population.MustMonth(month) }
	// Vulnerable population RISES for ~2 years after the 2012 advisory.
	v2012 := truth.Vuln[at("2012-07")]
	v2014 := truth.Vuln[at("2014-03")]
	if v2014 <= v2012 {
		t.Errorf("Juniper vulnerable should rise post-advisory: 2012-07=%d 2014-03=%d", v2012, v2014)
	}
	// Heartbleed: sharp drop in both vulnerable and total populations.
	if after := truth.Vuln[at("2014-05")]; after >= v2014 {
		t.Errorf("Juniper vulnerable should drop at Heartbleed: %d -> %d", v2014, after)
	}
	if before, after := truth.Total[at("2014-04")], truth.Total[at("2014-05")]; after >= before {
		t.Errorf("Juniper total should drop at Heartbleed: %d -> %d", before, after)
	}
	// The observed series sees the total-population cliff too (totals are
	// large enough that sampling noise cannot hide a 3/8 drop).
	series := s.Analyzer.VendorSeries("Juniper", "")
	i := series.At(population.MustMonth("2014-04").Time())
	j := series.At(population.MustMonth("2014-05").Time())
	if i < 0 || j < 0 {
		t.Fatal("scan dates missing")
	}
	if series.Total[j] >= series.Total[i] {
		t.Errorf("observed Juniper total should drop across Heartbleed: %d -> %d", series.Total[i], series.Total[j])
	}
}

func TestInnominateFlat(t *testing.T) {
	s := testStudy(t)
	series := s.Analyzer.VendorSeries("Innominate", "")
	at := func(month string) int { return series.At(population.MustMonth(month).Time()) }
	v13, v15 := series.Vuln[at("2013-06")], series.Vuln[at("2015-09")]
	if v13 == 0 {
		t.Fatal("no Innominate vulnerable population")
	}
	diff := v13 - v15
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.5*float64(v13) {
		t.Errorf("Innominate vulnerable should stay roughly flat: %d vs %d", v13, v15)
	}
	// Total grows over the same period.
	if series.Total[at("2015-09")] <= series.Total[at("2012-06")] {
		t.Error("Innominate total should grow")
	}
}

func TestIBMDecline(t *testing.T) {
	s := testStudy(t)
	series := s.Analyzer.VendorSeries("IBM", "")
	at := func(month string) int { return series.At(population.MustMonth(month).Time()) }
	// Single scans are noisy and coverage differs between source eras
	// (the paper's "methodology artifacts"), so compare half-year sums
	// within the Ecosystem era, plus the endpoints.
	sum := func(months ...string) int {
		total := 0
		for _, m := range months {
			total += series.Vuln[at(m)]
		}
		return total
	}
	early := sum("2012-06", "2012-07", "2012-08", "2012-09", "2012-10", "2012-11")
	late := sum("2013-08", "2013-09", "2013-10", "2013-11", "2013-12", "2014-01")
	if late >= early {
		t.Errorf("IBM should already be declining before/through 2012-2013: early window %d, late window %d", early, late)
	}
	if v2016 := series.Vuln[at("2016-04")]; v2016*2 >= series.Vuln[at("2012-06")]*1 && v2016 > 4 {
		t.Errorf("IBM 2016 population %d should be well below 2012 (%d)", v2016, series.Vuln[at("2012-06")])
	}
	// The Heartbleed cliff (targets drop 44 -> 21 around 04/2014).
	if series.Vuln[at("2014-05")] >= series.Vuln[at("2014-03")] {
		t.Errorf("IBM should drop across Heartbleed: %d -> %d",
			series.Vuln[at("2014-03")], series.Vuln[at("2014-05")])
	}
}

func TestNewlyVulnerableVendors(t *testing.T) {
	s := testStudy(t)
	for _, vendor := range []string{"Huawei", "ADTRAN", "Sangfor", "Schmid Telecom"} {
		series := s.Analyzer.VendorSeries(vendor, "")
		at := func(month string) int { return series.At(population.MustMonth(month).Time()) }
		if early := series.Vuln[at("2013-06")]; early != 0 {
			t.Errorf("%s: vulnerable before introduction: %d", vendor, early)
		}
		if late := series.Vuln[at("2016-04")]; late == 0 {
			t.Errorf("%s: no vulnerable hosts by 2016", vendor)
		}
	}
}

func TestOpenSSLTable5Agreement(t *testing.T) {
	s := testStudy(t)
	for name, vs := range s.Fingerprint.Vendors {
		if vs.PrimesTotal < 6 {
			continue // tiny samples are inconclusive
		}
		reg := devices.ByName(name)
		if reg == nil || reg.OpenSSL == devices.OpenSSLUnknown {
			continue
		}
		if vs.OpenSSL != reg.OpenSSL {
			t.Errorf("%s: measured %v, registry says %v (sat %d/%d)",
				name, vs.OpenSSL, reg.OpenSSL, vs.PrimesSatisfyingOpenSSL, vs.PrimesTotal)
		}
	}
}

func TestCliqueIsIBM(t *testing.T) {
	s := testStudy(t)
	if len(s.Fingerprint.Cliques) == 0 {
		t.Fatal("IBM clique not detected")
	}
	cl := s.Fingerprint.Cliques[0]
	if len(cl.Primes) > 9 {
		t.Errorf("largest clique has %d primes, expected <= 9", len(cl.Primes))
	}
	if len(cl.ModKeys) <= len(cl.Primes) {
		t.Error("clique shape wrong")
	}
	// The Siemens overlap is recorded.
	if s.Fingerprint.PrimeOverlaps[[2]string{"IBM", "Siemens"}] == 0 {
		t.Error("Siemens/IBM overlap missing")
	}
}

func TestDellXeroxOverlapInStudy(t *testing.T) {
	s := testStudy(t)
	// Whether a factored cohort prime actually spans both vendors is
	// seed- and scale-dependent (cohorts hold 2-6 keys). Determine the
	// ground truth first, then require the pipeline to agree.
	truth := s.Sim.TruthByFP()
	vendorsByPrime := make(map[string]map[string]bool)
	for _, c := range s.Store.DistinctCerts() {
		fp, err := c.Fingerprint()
		if err != nil {
			continue
		}
		tr, ok := truth[fp]
		if !ok || (tr.Vendor != "Dell" && tr.Vendor != "Xerox") {
			continue
		}
		f, ok := s.Fingerprint.Factors[c.ModulusKey()]
		if !ok {
			continue
		}
		for _, p := range []*big.Int{f.P, f.Q} {
			k := p.String()
			if vendorsByPrime[k] == nil {
				vendorsByPrime[k] = make(map[string]bool)
			}
			vendorsByPrime[k][tr.Vendor] = true
		}
	}
	truthOverlap := false
	for _, vs := range vendorsByPrime {
		if vs["Dell"] && vs["Xerox"] {
			truthOverlap = true
		}
	}
	recorded := s.Fingerprint.PrimeOverlaps[[2]string{"Dell", "Xerox"}] > 0
	if truthOverlap && !recorded {
		t.Error("ground-truth Dell/Xerox prime overlap not recorded by the pipeline")
	}
	if !truthOverlap && recorded {
		t.Error("pipeline recorded a Dell/Xerox overlap that is not in ground truth")
	}
}

func TestMITMDetected(t *testing.T) {
	s := testStudy(t)
	want := string(s.Sim.MITMModulus().Bytes())
	found := false
	for _, m := range s.Fingerprint.MITM {
		if m.ModKey == want {
			found = true
			if m.DistinctCerts < 3 || m.DistinctIPs < 3 {
				t.Errorf("suspect counts: %+v", m)
			}
		}
	}
	if !found {
		t.Error("Internet Rimon modulus not flagged")
	}
}

func TestBitErrorsSetAside(t *testing.T) {
	s := testStudy(t)
	// With rate 0.0004 over >100k observations some corrupted moduli
	// must appear; those that were factored are classified as bit
	// errors, not vulnerabilities.
	for _, be := range s.Fingerprint.BitErrors {
		if _, ok := s.Fingerprint.Factors[be.ModKey]; ok {
			t.Error("bit-error modulus in the factored set")
		}
	}
}

func TestTablesRender(t *testing.T) {
	s := testStudy(t)
	for n := 1; n <= 5; n++ {
		var b strings.Builder
		if err := s.Table(&b, n); err != nil {
			t.Errorf("table %d: %v", n, err)
		}
		if b.Len() == 0 {
			t.Errorf("table %d empty", n)
		}
	}
	var b strings.Builder
	if err := s.Table(&b, 6); err == nil {
		t.Error("table 6 should not exist")
	}
	if err := s.Table1(&b); err != nil {
		t.Error(err)
	}
	if !strings.Contains(b.String(), "Vulnerable RSA moduli") {
		t.Error("Table 1 missing rows")
	}
}

func TestFiguresRender(t *testing.T) {
	s := testStudy(t)
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		var b strings.Builder
		if err := s.Figure(&b, n); err != nil {
			t.Errorf("figure %d: %v", n, err)
		}
		if b.Len() == 0 {
			t.Errorf("figure %d empty", n)
		}
	}
	var b strings.Builder
	if err := s.Figure(&b, 11); err == nil {
		t.Error("figure 11 should not exist")
	}
}

func TestTable4Shape(t *testing.T) {
	s := testStudy(t)
	var b strings.Builder
	if err := s.Table4(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, proto := range []string{"HTTPS", "SSH", "POP3S", "IMAPS", "SMTPS"} {
		if !strings.Contains(out, proto) {
			t.Errorf("Table 4 missing %s", proto)
		}
	}
	// Mail protocols contribute zero vulnerable hosts; SSH a few.
	rows := s.Analyzer.ProtocolBreakdown(nil)
	_ = rows
}

func TestHeartbleedIsLargestTruthDrop(t *testing.T) {
	// The paper's headline temporal finding: the single largest drop in
	// the vulnerable population lands at the Heartbleed disclosure. The
	// underlying (ground-truth) population shows this deterministically;
	// the scan-sampled aggregate reproduces it at full scale (verified
	// by `weakkeys -all`: 2014-04 -> 2014-05 is the largest observed
	// drop) but at this test's 25% scale binomial noise can blur single
	// months, so the assertion here uses the truth series.
	s := testStudy(t)
	truth := truthSeries(s, "")
	hb := population.MustMonth("2014-05")
	hbDrop := truth.Vuln[hb-1] - truth.Vuln[hb]
	if hbDrop <= 0 {
		t.Fatalf("no vulnerable-population drop across Heartbleed (got %d)", hbDrop)
	}
	for m := population.Month(1); m < population.Months; m++ {
		if m == hb {
			continue
		}
		if d := truth.Vuln[m-1] - truth.Vuln[m]; d > hbDrop {
			t.Errorf("month %s drops %d > Heartbleed's %d", m, d, hbDrop)
		}
	}
	// Sanity on the observed aggregate: the Heartbleed window must not
	// show growth.
	agg := s.Analyzer.AggregateSeries()
	i := agg.At(population.MustMonth("2014-04").Time())
	j := agg.At(hb.Time())
	if i >= 0 && j >= 0 && agg.Vuln[j] > agg.Vuln[i] {
		t.Errorf("observed vulnerable population grew across Heartbleed: %d -> %d", agg.Vuln[i], agg.Vuln[j])
	}
}

func TestSummaryRenders(t *testing.T) {
	s := testStudy(t)
	var b strings.Builder
	if err := s.Summary(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Largest vulnerable-population drop", "RSA key exchange",
		"Juniper", "Disclosure campaign 2012", "Disclosure campaign 2016"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("summary missing %q", want)
		}
	}
}

func TestKeyExchange74Percent(t *testing.T) {
	s := testStudy(t)
	ke := s.Analyzer.KeyExchangeAt(population.MustMonth("2016-04").Time())
	if ke.VulnerableHosts == 0 {
		t.Fatal("no vulnerable hosts in the April 2016 scan")
	}
	// The paper: 74% of vulnerable devices only support RSA key
	// exchange. The simulation samples per device; allow wide slack.
	if frac := ke.Fraction(); frac < 0.60 || frac > 0.88 {
		t.Errorf("RSA-only fraction = %.3f (of %d), want near 0.74", frac, ke.VulnerableHosts)
	}
}

func TestReplacementsDominatePatching(t *testing.T) {
	s := testStudy(t)
	// Across the never-responding vendors (no flips configured), every
	// vulnerable->safe transition must be replacement or IP churn, not
	// patching — the paper's central end-user finding.
	totalRep, totalPatch := 0, 0
	for _, vendor := range []string{"ZyXEL", "Linksys", "Thomson", "McAfee"} {
		rep := s.Analyzer.Replacements(vendor)
		totalRep += rep.Replaced
		totalPatch += rep.PatchedInPlace
	}
	if totalRep == 0 {
		t.Fatal("no transitions at all among declining vendors")
	}
	if totalPatch > totalRep/10 {
		t.Errorf("patched-in-place %d vs replaced %d: patching should be rare-to-absent", totalPatch, totalRep)
	}
	// Juniper has flips configured (certificate regeneration on the
	// same device), so in-place transitions exist there.
	jun := s.Analyzer.Replacements("Juniper")
	if jun.PatchedInPlace == 0 {
		t.Error("Juniper flips should register as in-place re-keying")
	}
}

func TestTransitionsExist(t *testing.T) {
	s := testStudy(t)
	tr := s.Analyzer.Transitions("Juniper")
	if tr.EverVuln == 0 || tr.EverTotal == 0 {
		t.Fatalf("transitions: %+v", tr)
	}
	if tr.VulnToSafe == 0 && tr.SafeToVuln == 0 {
		t.Error("Juniper flips configured but no transitions observed")
	}
}

func TestAnalyzeStoreMatchesRun(t *testing.T) {
	s := testStudy(t)
	// Round-trip the corpus through Save/Load, re-analyze without the
	// simulation, and compare the headline numbers.
	var buf bytes.Buffer
	if err := s.Store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	store, err := scanstore.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := AnalyzeStore(context.Background(), store, Options{KeyBits: 128, Subsets: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, b := s.Analyzer.CorpusStats(), s2.Analyzer.CorpusStats()
	if a != b {
		t.Errorf("reloaded analysis differs:\n run: %+v\nload: %+v", a, b)
	}
	// Without analyst clique knowledge the IBM attribution falls back
	// to majority labels (possibly Siemens); everything else matches.
	for _, vendor := range []string{"Juniper", "Fritz!Box", "Cisco"} {
		sa := s.Analyzer.VendorSeries(vendor, "")
		sb := s2.Analyzer.VendorSeries(vendor, "")
		for i := range sa.Dates {
			if sa.Total[i] != sb.Total[i] || sa.Vuln[i] != sb.Vuln[i] {
				t.Errorf("%s series diverges at %v", vendor, sa.Dates[i])
				break
			}
		}
	}
}

func TestSourcesAndExport(t *testing.T) {
	s := testStudy(t)
	var b strings.Builder
	if err := s.Sources(&b); err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{"EFF", "P&Q", "Ecosystem", "Rapid7", "Censys"} {
		if !strings.Contains(b.String(), src) {
			t.Errorf("source table missing %s", src)
		}
	}
	dir := t.TempDir()
	files, err := s.ExportCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if files < 10 {
		t.Errorf("exported %d files, want one per vendor plus aggregate", files)
	}
	data, err := os.ReadFile(filepath.Join(dir, "all.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "date,source,total,vulnerable") {
		t.Error("aggregate CSV malformed")
	}
	if _, err := os.Stat(filepath.Join(dir, "Fritz_Box.csv")); err != nil {
		t.Errorf("vendor CSV naming: %v", err)
	}
}

// TestAnomalyStage runs a small ecosystem made only of the anomalous
// device families and checks the optional Anomaly stage surfaces every
// class batch GCD cannot see.
func TestAnomalyStage(t *testing.T) {
	s, err := Run(context.Background(), Options{
		Seed:      11,
		KeyBits:   128,
		Lines:     population.AnomalyLines(),
		Anomalies: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Anomaly
	if rep == nil {
		t.Fatal("Options.Anomalies set but Study.Anomaly is nil")
	}
	if rep.FermatWeakCount == 0 {
		t.Error("no Fermat-weak moduli found in a close-primes fleet")
	}
	if rep.SmallFactorCount == 0 {
		t.Error("no small-factor moduli found in a small-factor fleet")
	}
	if rep.SharedCount == 0 {
		t.Error("no shared moduli found in a shared-modulus fleet")
	}
	if rep.Exponents.Anomalous() == 0 {
		t.Error("no anomalous exponents found in an e=1 fleet")
	}
	if sr := s.Report.Stage(StageAnomaly); sr == nil {
		t.Error("run report missing the Anomaly stage")
	} else if sr.Stats.ItemsOut == 0 {
		t.Error("Anomaly stage reported zero findings")
	}
	var b strings.Builder
	if err := s.Anomalies(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"shared moduli", "Fermat-factorable", "exponent census"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("anomaly summary missing %q:\n%s", want, b.String())
		}
	}
}

// TestAnomalyStageGated: without Options.Anomalies the stage must not
// run and the printer must say so.
func TestAnomalyStageGated(t *testing.T) {
	s := testStudy(t)
	if s.Anomaly != nil {
		t.Error("Study.Anomaly set without Options.Anomalies")
	}
	if s.Report.Stage(StageAnomaly) != nil {
		t.Error("Anomaly stage ran without Options.Anomalies")
	}
	if err := s.Anomalies(new(strings.Builder)); err == nil {
		t.Error("Anomalies() on a run without the stage should error")
	}
}

// Package analysis derives the paper's longitudinal results from the
// scan store and the fingerprint labels: per-vendor population time
// series (Figures 3-10), the aggregate series (Figure 1), host
// vulnerability transitions (the Juniper patching analysis of Section
// 4.1), and the per-table summary statistics.
package analysis

import (
	"sort"
	"time"

	"github.com/factorable/weakkeys/internal/fingerprint"
	"github.com/factorable/weakkeys/internal/scanstore"
)

// Series is a time series of total and vulnerable host counts for one
// population (a vendor, a model, or the whole corpus).
type Series struct {
	Name  string
	Dates []time.Time
	// Total is the number of hosts serving a certificate attributed to
	// the population on each date.
	Total []int
	// Vuln is the subset serving factored keys.
	Vuln []int
	// Source records the scan project per date (for era annotations).
	Sources []scanstore.Source
}

// At returns the index for a date, or -1.
func (s *Series) At(d time.Time) int {
	for i, t := range s.Dates {
		if t.Equal(d) {
			return i
		}
	}
	return -1
}

// PeakVuln returns the maximum vulnerable count and its date.
func (s *Series) PeakVuln() (int, time.Time) {
	best, when := 0, time.Time{}
	for i, v := range s.Vuln {
		if v > best {
			best, when = v, s.Dates[i]
		}
	}
	return best, when
}

// Analyzer precomputes the per-record attributions needed by every query.
type Analyzer struct {
	store *scanstore.Store
	// labels maps certificate fingerprints to vendor attributions.
	labels map[[32]byte]fingerprint.Label
	// vulnMod marks factored modulus keys (bit-error moduli excluded).
	vulnMod map[string]bool
	// excluded marks moduli set aside as measurement artifacts (bit
	// errors); transition analyses skip records carrying them so a
	// one-off corrupted observation does not read as a key change.
	excluded map[string]bool
	// records is the chain-reconstructed view: intermediates stripped.
	records []scanstore.HostRecord
	dates   []time.Time
	sources map[time.Time]scanstore.Source
}

// ExcludeModuli marks modulus keys as measurement artifacts to be skipped
// by the transition and replacement analyses.
func (a *Analyzer) ExcludeModuli(keys map[string]bool) {
	a.excluded = keys
}

// New builds an analyzer. vulnKeys should be the factored modulus keys
// after bit-error exclusion (fingerprint.Result.Factors).
//
// Construction reconstructs certificate chains per host and keeps only
// the lowest certificate: the Rapid7 scans recorded intermediate (CA)
// certificates alongside leaves without chaining them, and the paper
// excluded them "by reconstructing the chains using common names among
// all certificates associated with each IP address and including only
// the lowest certificate in the chain" (Section 3.1).
func New(store *scanstore.Store, labels map[[32]byte]fingerprint.Label, vulnKeys map[string]bool) *Analyzer {
	a := &Analyzer{
		store:   store,
		labels:  labels,
		vulnMod: vulnKeys,
		sources: make(map[time.Time]scanstore.Source),
	}
	a.records = StripIntermediates(store)
	a.dates = store.ScanDates(scanstore.HTTPS)
	for _, r := range a.records {
		if r.Protocol == scanstore.HTTPS {
			a.sources[r.Date] = r.Source
		}
	}
	return a
}

// StripIntermediates returns the store's records with per-host
// intermediate certificates removed: within each (IP, date) group, a
// record is dropped when its certificate's subject common name appears
// as the issuer of a different certificate in the same group.
func StripIntermediates(store *scanstore.Store) []scanstore.HostRecord {
	records := store.Records()
	type groupKey struct {
		ip   string
		date time.Time
	}
	// First pass: per group, collect issuer CNs seen on other certs.
	issuers := make(map[groupKey]map[string][32]byte) // issuer CN -> a cert that names it
	for _, r := range records {
		if r.Protocol != scanstore.HTTPS || r.CertFP == ([32]byte{}) {
			continue
		}
		c := store.Cert(r.CertFP)
		if c == nil || c.Issuer.CommonName == "" || c.Issuer == c.Subject {
			continue
		}
		k := groupKey{r.IP, r.Date}
		if issuers[k] == nil {
			issuers[k] = make(map[string][32]byte)
		}
		issuers[k][c.Issuer.CommonName] = r.CertFP
	}
	out := make([]scanstore.HostRecord, 0, len(records))
	for _, r := range records {
		if r.Protocol == scanstore.HTTPS && r.CertFP != ([32]byte{}) {
			if c := store.Cert(r.CertFP); c != nil {
				k := groupKey{r.IP, r.Date}
				if namedBy, ok := issuers[k][c.Subject.CommonName]; ok && namedBy != r.CertFP {
					continue // an intermediate: some other cert here names it as issuer
				}
			}
		}
		out = append(out, r)
	}
	return out
}

// matches reports whether a record belongs to the vendor/model selection
// ("" matches all).
func (a *Analyzer) matches(r scanstore.HostRecord, vendor, model string) bool {
	if vendor == "" {
		return true
	}
	lbl, ok := a.labels[r.CertFP]
	if !ok {
		return false
	}
	if lbl.Vendor != vendor {
		return false
	}
	return model == "" || lbl.Model == model
}

// VendorSeries builds the Figure 3-10 series for one vendor (optionally
// one model — the Cisco end-of-life analysis uses models).
func (a *Analyzer) VendorSeries(vendor, model string) Series {
	return a.series(vendor+"/"+model, func(r scanstore.HostRecord) bool {
		return a.matches(r, vendor, model)
	})
}

// AggregateSeries builds the Figure 1 series over all HTTPS hosts.
func (a *Analyzer) AggregateSeries() Series {
	return a.series("all", func(r scanstore.HostRecord) bool { return true })
}

func (a *Analyzer) series(name string, match func(scanstore.HostRecord) bool) Series {
	s := Series{Name: name, Dates: a.dates}
	totals := make(map[time.Time]int)
	vulns := make(map[time.Time]int)
	for _, r := range a.records {
		if r.Protocol != scanstore.HTTPS || !match(r) {
			continue
		}
		totals[r.Date]++
		if a.vulnMod[r.ModKey] {
			vulns[r.Date]++
		}
	}
	for _, d := range a.dates {
		s.Total = append(s.Total, totals[d])
		s.Vuln = append(s.Vuln, vulns[d])
		s.Sources = append(s.Sources, a.sources[d])
	}
	return s
}

// Transitions summarizes per-IP vulnerability transitions for a vendor,
// reproducing the Section 4.1 Juniper analysis: how many IPs ever moved
// from a vulnerable to a non-vulnerable certificate (patching or
// replacement), the reverse, or both repeatedly.
type Transitions struct {
	// EverTotal and EverVuln count distinct IPs ever fingerprinted for
	// the vendor and ever serving a vulnerable key.
	EverTotal, EverVuln int
	// VulnToSafe counts IPs with at least one vulnerable->safe move.
	VulnToSafe int
	// SafeToVuln counts IPs with at least one safe->vulnerable move.
	SafeToVuln int
	// Multiple counts IPs that transitioned more than once.
	Multiple int
}

// Transitions computes the transition summary for a vendor.
func (a *Analyzer) Transitions(vendor string) Transitions {
	type obs struct {
		date time.Time
		vuln bool
	}
	perIP := make(map[string][]obs)
	for _, r := range a.records {
		if r.Protocol != scanstore.HTTPS || !a.matches(r, vendor, "") || a.excluded[r.ModKey] {
			continue
		}
		perIP[r.IP] = append(perIP[r.IP], obs{r.Date, a.vulnMod[r.ModKey]})
	}
	var tr Transitions
	for _, seq := range perIP {
		sort.Slice(seq, func(i, j int) bool { return seq[i].date.Before(seq[j].date) })
		tr.EverTotal++
		ever := false
		flips := 0
		var v2s, s2v bool
		for i, o := range seq {
			if o.vuln {
				ever = true
			}
			if i > 0 && o.vuln != seq[i-1].vuln {
				flips++
				if o.vuln {
					s2v = true
				} else {
					v2s = true
				}
			}
		}
		if ever {
			tr.EverVuln++
		}
		if v2s {
			tr.VulnToSafe++
		}
		if s2v {
			tr.SafeToVuln++
		}
		if flips > 1 {
			tr.Multiple++
		}
	}
	return tr
}

// Drop measures the change in a series between two dates: the Heartbleed
// analysis compares 2014-03 to 2014-05.
type Drop struct {
	TotalBefore, TotalAfter int
	VulnBefore, VulnAfter   int
}

// TotalDrop and VulnDrop are the absolute decreases (negative = growth).
func (d Drop) TotalDrop() int { return d.TotalBefore - d.TotalAfter }
func (d Drop) VulnDrop() int  { return d.VulnBefore - d.VulnAfter }

// DropBetween measures a series between the scans nearest the two dates.
func DropBetween(s Series, before, after time.Time) Drop {
	bi, ai := nearest(s.Dates, before), nearest(s.Dates, after)
	var d Drop
	if bi >= 0 {
		d.TotalBefore, d.VulnBefore = s.Total[bi], s.Vuln[bi]
	}
	if ai >= 0 {
		d.TotalAfter, d.VulnAfter = s.Total[ai], s.Vuln[ai]
	}
	return d
}

func nearest(dates []time.Time, want time.Time) int {
	best, bestDiff := -1, time.Duration(1<<62)
	for i, d := range dates {
		diff := d.Sub(want)
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			best, bestDiff = i, diff
		}
	}
	return best
}

// LargestVulnDrop locates the largest scan-over-scan decrease in a
// series' vulnerable population. The paper's headline temporal finding is
// that the single largest drop in the whole dataset lands at the
// Heartbleed disclosure (April 2014) — not at any weak-key advisory.
func LargestVulnDrop(s Series) (from, to time.Time, drop int) {
	for i := 1; i < len(s.Dates); i++ {
		if d := s.Vuln[i-1] - s.Vuln[i]; d > drop {
			drop = d
			from, to = s.Dates[i-1], s.Dates[i]
		}
	}
	return from, to, drop
}

// CorpusStats are the Table 1 headline numbers.
type CorpusStats struct {
	HTTPSHostRecords    int
	DistinctHTTPSCerts  int
	DistinctHTTPSModuli int
	TotalDistinctModuli int
	VulnerableModuli    int
	VulnerableRecords   int
	VulnerableCerts     int
}

// CorpusStats aggregates Table 1 over the chain-reconstructed record
// view (intermediates excluded), except TotalDistinctModuli, which spans
// the raw corpus fed to batch GCD.
func (a *Analyzer) CorpusStats() CorpusStats {
	var cs CorpusStats
	allStats := a.store.Stats("")
	cs.TotalDistinctModuli = allStats.DistinctModuli
	cs.VulnerableModuli = len(a.vulnMod)
	certSet := make(map[[32]byte]bool)
	modSet := make(map[string]bool)
	vulnCerts := make(map[[32]byte]bool)
	for _, r := range a.records {
		if r.Protocol != scanstore.HTTPS {
			continue
		}
		cs.HTTPSHostRecords++
		certSet[r.CertFP] = true
		modSet[r.ModKey] = true
		if a.vulnMod[r.ModKey] {
			cs.VulnerableRecords++
			vulnCerts[r.CertFP] = true
		}
	}
	cs.DistinctHTTPSCerts = len(certSet)
	cs.DistinctHTTPSModuli = len(modSet)
	cs.VulnerableCerts = len(vulnCerts)
	return cs
}

// ProtocolStats is one Table 4 row.
type ProtocolStats struct {
	Protocol        scanstore.Protocol
	ScanDate        time.Time
	TotalHosts      int
	VulnerableHosts int
}

// ProtocolBreakdown computes Table 4 for the given protocols (hosts on
// the latest scan date per protocol).
func (a *Analyzer) ProtocolBreakdown(protos []scanstore.Protocol) []ProtocolStats {
	var out []ProtocolStats
	for _, p := range protos {
		dates := a.store.ScanDates(p)
		ps := ProtocolStats{Protocol: p}
		if len(dates) > 0 {
			ps.ScanDate = dates[len(dates)-1]
			for _, r := range a.store.RecordsOn(ps.ScanDate, p) {
				ps.TotalHosts++
				if a.vulnMod[r.ModKey] {
					ps.VulnerableHosts++
				}
			}
		}
		out = append(out, ps)
	}
	return out
}

// KeyExchange summarizes cipher-suite exposure among vulnerable hosts on
// one scan date (Section 2.1: 74% of the 61,240 vulnerable devices in the
// April 2016 scan only supported RSA key exchange, so a factored key
// decrypts their sessions passively).
type KeyExchange struct {
	Date            time.Time
	VulnerableHosts int
	RSAOnly         int
}

// Fraction returns the RSA-only share.
func (k KeyExchange) Fraction() float64 {
	if k.VulnerableHosts == 0 {
		return 0
	}
	return float64(k.RSAOnly) / float64(k.VulnerableHosts)
}

// KeyExchangeAt computes the exposure on the scan nearest to date (zero
// time means the latest scan).
func (a *Analyzer) KeyExchangeAt(date time.Time) KeyExchange {
	if len(a.dates) == 0 {
		return KeyExchange{}
	}
	idx := len(a.dates) - 1
	if !date.IsZero() {
		idx = nearest(a.dates, date)
	}
	ke := KeyExchange{Date: a.dates[idx]}
	for _, r := range a.store.RecordsOn(a.dates[idx], scanstore.HTTPS) {
		if !a.vulnMod[r.ModKey] {
			continue
		}
		ke.VulnerableHosts++
		if r.RSAOnly {
			ke.RSAOnly++
		}
	}
	return ke
}

// Replacements classifies the vulnerable->safe transitions of a vendor's
// IPs: did the same certificate-holder regenerate its key (a patch), or
// did a different device appear at the address (replacement or IP churn)?
// The paper's IBM analysis found the decline was replacement, not
// patching: of 1,728 ever-vulnerable IPs, the 350 that later served
// non-vulnerable certificates showed "varying subjects ... due to IP
// churn".
type Replacements struct {
	// PatchedInPlace: the safe certificate kept the vulnerable
	// certificate's serial — the same device re-keyed.
	PatchedInPlace int
	// Replaced: a different certificate-holder took over the IP.
	Replaced int
}

// Replacements analyzes all vulnerable->safe transitions for a vendor.
func (a *Analyzer) Replacements(vendor string) Replacements {
	type obs struct {
		date time.Time
		vuln bool
		fp   [32]byte
	}
	perIP := make(map[string][]obs)
	for _, r := range a.records {
		if r.Protocol != scanstore.HTTPS || !a.matches(r, vendor, "") || a.excluded[r.ModKey] {
			continue
		}
		perIP[r.IP] = append(perIP[r.IP], obs{r.Date, a.vulnMod[r.ModKey], r.CertFP})
	}
	var out Replacements
	for _, seq := range perIP {
		sort.Slice(seq, func(i, j int) bool { return seq[i].date.Before(seq[j].date) })
		for i := 1; i < len(seq); i++ {
			if !seq[i-1].vuln || seq[i].vuln {
				continue
			}
			before := a.store.Cert(seq[i-1].fp)
			after := a.store.Cert(seq[i].fp)
			if before != nil && after != nil &&
				before.SerialNumber.Cmp(after.SerialNumber) == 0 {
				out.PatchedInPlace++
			} else {
				out.Replaced++
			}
		}
	}
	return out
}

// SourceStats summarizes one scan project's contribution to the corpus —
// the Section 3.1 accounting of the five data sources.
type SourceStats struct {
	Source        scanstore.Source
	Scans         int
	HostRecords   int
	DistinctCerts int
	FirstScan     time.Time
	LastScan      time.Time
}

// SourceBreakdown aggregates HTTPS records per scan project, ordered by
// first appearance.
func (a *Analyzer) SourceBreakdown() []SourceStats {
	byerr := make(map[scanstore.Source]*SourceStats)
	certSets := make(map[scanstore.Source]map[[32]byte]bool)
	dateSets := make(map[scanstore.Source]map[time.Time]bool)
	for _, r := range a.records {
		if r.Protocol != scanstore.HTTPS {
			continue
		}
		st := byerr[r.Source]
		if st == nil {
			st = &SourceStats{Source: r.Source, FirstScan: r.Date, LastScan: r.Date}
			byerr[r.Source] = st
			certSets[r.Source] = make(map[[32]byte]bool)
			dateSets[r.Source] = make(map[time.Time]bool)
		}
		st.HostRecords++
		certSets[r.Source][r.CertFP] = true
		dateSets[r.Source][r.Date] = true
		if r.Date.Before(st.FirstScan) {
			st.FirstScan = r.Date
		}
		if r.Date.After(st.LastScan) {
			st.LastScan = r.Date
		}
	}
	out := make([]SourceStats, 0, len(byerr))
	for src, st := range byerr {
		st.DistinctCerts = len(certSets[src])
		st.Scans = len(dateSets[src])
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FirstScan.Before(out[j].FirstScan) })
	return out
}

// Vendors returns the vendor names present in the labels, sorted.
func (a *Analyzer) Vendors() []string {
	set := make(map[string]bool)
	for _, l := range a.labels {
		set[l.Vendor] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

package analysis

import (
	"math/big"
	"testing"
	"time"

	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/scanstore"
)

func TestKeyExchangeAt(t *testing.T) {
	f := newFixture(t)
	// A later scan with RSAOnly flags set on some hosts.
	d4 := time.Date(2016, 4, 15, 0, 0, 0, 0, time.UTC)
	add := func(ip string, cert *certs.Certificate, rsaOnly bool) {
		if err := f.store.Add(scanstore.Observation{
			IP: ip, Date: d4, Source: scanstore.SourceCensys,
			Protocol: scanstore.HTTPS, Cert: cert, RSAOnly: rsaOnly,
		}); err != nil {
			t.Fatal(err)
		}
	}
	add("ip1", f.certVulnA, true)
	add("ip2", f.certVulnA2, true)
	add("ip3", f.certVulnA, false)
	add("ip4", f.certSafeA, true) // safe host: never counted

	ke := f.analyzer().KeyExchangeAt(time.Time{}) // latest scan = d4
	if !ke.Date.Equal(d4) {
		t.Errorf("date: %v", ke.Date)
	}
	if ke.VulnerableHosts != 3 {
		t.Errorf("vulnerable = %d, want 3", ke.VulnerableHosts)
	}
	if ke.RSAOnly != 2 {
		t.Errorf("RSA-only = %d, want 2", ke.RSAOnly)
	}
	if frac := ke.Fraction(); frac < 0.66 || frac > 0.67 {
		t.Errorf("fraction = %v", frac)
	}
	if (KeyExchange{}).Fraction() != 0 {
		t.Error("empty fraction should be 0")
	}
	// Nearest-date selection.
	ke2 := f.analyzer().KeyExchangeAt(f.d1.AddDate(0, 0, 2))
	if !ke2.Date.Equal(f.d1) {
		t.Errorf("nearest date: %v", ke2.Date)
	}
}

// TestReplacementsClassification builds the two vulnerable->safe shapes:
// the same certificate-holder re-keying in place (same serial) and a
// different device taking over the address.
func TestReplacementsClassification(t *testing.T) {
	f := newFixture(t)
	// Fixture transitions so far: ip1 vuln(serial 1) -> safe(serial 3)
	// and ip3 vuln(serial 1) -> safe(serial 3): both serial changes.
	// Add a patch-in-place on ip2: a safe certificate with certVulnA2's
	// serial (2) but a different key, appearing after its vulnerable run.
	patch := mkCert(t, 20, "a-vuln-2-rekeyed")
	patch.SerialNumber = big.NewInt(2)
	fp, err := patch.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	f.labels[fp] = f.labels[mustFP(t, f.certVulnA2)]
	d4 := time.Date(2015, 6, 15, 0, 0, 0, 0, time.UTC)
	if err := f.store.AddCertObservation("ip2", d4, scanstore.SourceRapid7, scanstore.HTTPS, patch); err != nil {
		t.Fatal(err)
	}

	rep := f.analyzer().Replacements("VendorA")
	if rep.PatchedInPlace != 1 {
		t.Errorf("patched = %d, want 1 (ip2)", rep.PatchedInPlace)
	}
	if rep.Replaced != 2 {
		t.Errorf("replaced = %d, want 2 (ip1, ip3)", rep.Replaced)
	}
}

func mustFP(t *testing.T, c *certs.Certificate) [32]byte {
	t.Helper()
	fp, err := c.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

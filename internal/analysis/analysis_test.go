package analysis

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"
	"time"

	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/fingerprint"
	"github.com/factorable/weakkeys/internal/scanstore"
	"github.com/factorable/weakkeys/internal/weakrsa"
)

// fixture builds a tiny hand-labeled corpus:
//
//	dates: d1 < d2 < d3
//	vendorA: ip1 vulnerable on d1,d2, safe on d3 (vuln->safe)
//	         ip2 safe on d1, vulnerable on d2,d3 (safe->vuln)
//	         ip3 vulnerable d1, safe d2, vulnerable d3 (multiple)
//	vendorB: ip4 safe on all dates
type fixture struct {
	store                                               *scanstore.Store
	labels                                              map[[32]byte]fingerprint.Label
	vuln                                                map[string]bool
	d1, d2, d3                                          time.Time
	certVulnA, certSafeA, certVulnA2, certSafeA2, certB *certs.Certificate
}

func mkCert(t *testing.T, seed int64, cn string) *certs.Certificate {
	t.Helper()
	k, err := weakrsa.GenerateKey(rand.New(rand.NewSource(seed)), weakrsa.Options{Bits: 96})
	if err != nil {
		t.Fatal(err)
	}
	c, err := certs.SelfSigned(big.NewInt(seed), certs.Name{CommonName: cn},
		time.Unix(0, 0), time.Unix(1<<40, 0), nil, k.N, k.E, k.D)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func newFixture(t *testing.T) *fixture {
	f := &fixture{
		store:  scanstore.New(),
		labels: make(map[[32]byte]fingerprint.Label),
		vuln:   make(map[string]bool),
		d1:     time.Date(2012, 6, 15, 0, 0, 0, 0, time.UTC),
		d2:     time.Date(2014, 3, 15, 0, 0, 0, 0, time.UTC),
		d3:     time.Date(2014, 5, 15, 0, 0, 0, 0, time.UTC),
	}
	f.certVulnA = mkCert(t, 1, "a-vuln-1")
	f.certVulnA2 = mkCert(t, 2, "a-vuln-2")
	f.certSafeA = mkCert(t, 3, "a-safe-1")
	f.certSafeA2 = mkCert(t, 4, "a-safe-2")
	f.certB = mkCert(t, 5, "b-safe")

	label := func(c *certs.Certificate, vendor string) {
		fp, err := c.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		f.labels[fp] = fingerprint.Label{Vendor: vendor, Method: fingerprint.BySubject}
	}
	label(f.certVulnA, "VendorA")
	label(f.certVulnA2, "VendorA")
	label(f.certSafeA, "VendorA")
	label(f.certSafeA2, "VendorA")
	label(f.certB, "VendorB")
	f.vuln[f.certVulnA.ModulusKey()] = true
	f.vuln[f.certVulnA2.ModulusKey()] = true

	add := func(ip string, d time.Time, c *certs.Certificate) {
		if err := f.store.AddCertObservation(ip, d, scanstore.SourceEcosystem, scanstore.HTTPS, c); err != nil {
			t.Fatal(err)
		}
	}
	// ip1: vuln, vuln, safe
	add("ip1", f.d1, f.certVulnA)
	add("ip1", f.d2, f.certVulnA)
	add("ip1", f.d3, f.certSafeA)
	// ip2: safe, vuln, vuln
	add("ip2", f.d1, f.certSafeA2)
	add("ip2", f.d2, f.certVulnA2)
	add("ip2", f.d3, f.certVulnA2)
	// ip3: vuln, safe, vuln
	add("ip3", f.d1, f.certVulnA)
	add("ip3", f.d2, f.certSafeA)
	add("ip3", f.d3, f.certVulnA2)
	// ip4: safe always (vendor B)
	add("ip4", f.d1, f.certB)
	add("ip4", f.d2, f.certB)
	add("ip4", f.d3, f.certB)
	return f
}

func (f *fixture) analyzer() *Analyzer {
	return New(f.store, f.labels, f.vuln)
}

func TestVendorSeries(t *testing.T) {
	a := newFixture(t).analyzer()
	s := a.VendorSeries("VendorA", "")
	if len(s.Dates) != 3 {
		t.Fatalf("dates: %d", len(s.Dates))
	}
	wantTotal := []int{3, 3, 3}
	wantVuln := []int{2, 2, 2}
	for i := range s.Dates {
		if s.Total[i] != wantTotal[i] || s.Vuln[i] != wantVuln[i] {
			t.Errorf("date %d: total %d vuln %d, want %d/%d", i, s.Total[i], s.Vuln[i], wantTotal[i], wantVuln[i])
		}
	}
	b := a.VendorSeries("VendorB", "")
	if b.Total[0] != 1 || b.Vuln[0] != 0 {
		t.Errorf("VendorB: %v %v", b.Total, b.Vuln)
	}
}

func TestAggregateSeries(t *testing.T) {
	a := newFixture(t).analyzer()
	s := a.AggregateSeries()
	for i := range s.Dates {
		if s.Total[i] != 4 {
			t.Errorf("aggregate total[%d] = %d, want 4", i, s.Total[i])
		}
		if s.Vuln[i] != 2 {
			t.Errorf("aggregate vuln[%d] = %d, want 2", i, s.Vuln[i])
		}
		if s.Sources[i] != scanstore.SourceEcosystem {
			t.Errorf("source[%d] = %v", i, s.Sources[i])
		}
	}
	peak, when := s.PeakVuln()
	if peak != 2 || when.IsZero() {
		t.Errorf("peak %d at %v", peak, when)
	}
}

func TestTransitions(t *testing.T) {
	f := newFixture(t)
	tr := f.analyzer().Transitions("VendorA")
	if tr.EverTotal != 3 {
		t.Errorf("EverTotal = %d, want 3", tr.EverTotal)
	}
	if tr.EverVuln != 3 {
		t.Errorf("EverVuln = %d, want 3", tr.EverVuln)
	}
	// ip1: v->s; ip3: v->s then s->v (multiple); ip2: s->v.
	if tr.VulnToSafe != 2 {
		t.Errorf("VulnToSafe = %d, want 2 (ip1, ip3)", tr.VulnToSafe)
	}
	if tr.SafeToVuln != 2 {
		t.Errorf("SafeToVuln = %d, want 2 (ip2, ip3)", tr.SafeToVuln)
	}
	if tr.Multiple != 1 {
		t.Errorf("Multiple = %d, want 1 (ip3)", tr.Multiple)
	}
	trB := f.analyzer().Transitions("VendorB")
	if trB.EverVuln != 0 || trB.VulnToSafe != 0 {
		t.Errorf("VendorB transitions: %+v", trB)
	}
}

func TestDropBetween(t *testing.T) {
	f := newFixture(t)
	s := f.analyzer().AggregateSeries()
	d := DropBetween(s, f.d2, f.d3)
	if d.TotalBefore != 4 || d.TotalAfter != 4 || d.TotalDrop() != 0 {
		t.Errorf("drop: %+v", d)
	}
	if d.VulnDrop() != 0 {
		t.Errorf("vuln drop: %d", d.VulnDrop())
	}
	// Nearest-date matching: a query date between scans snaps to the
	// closest one.
	d2 := DropBetween(s, f.d2.AddDate(0, 0, 3), f.d3.AddDate(0, 0, -3))
	if d2.TotalBefore != 4 || d2.TotalAfter != 4 {
		t.Errorf("nearest matching failed: %+v", d2)
	}
}

func TestCorpusStats(t *testing.T) {
	f := newFixture(t)
	cs := f.analyzer().CorpusStats()
	if cs.HTTPSHostRecords != 12 {
		t.Errorf("records = %d, want 12", cs.HTTPSHostRecords)
	}
	if cs.DistinctHTTPSCerts != 5 {
		t.Errorf("certs = %d, want 5", cs.DistinctHTTPSCerts)
	}
	if cs.DistinctHTTPSModuli != 5 {
		t.Errorf("moduli = %d, want 5", cs.DistinctHTTPSModuli)
	}
	if cs.VulnerableModuli != 2 {
		t.Errorf("vuln moduli = %d", cs.VulnerableModuli)
	}
	// Vulnerable records: ip1 d1,d2; ip2 d2,d3; ip3 d1,d3 = 6.
	if cs.VulnerableRecords != 6 {
		t.Errorf("vuln records = %d, want 6", cs.VulnerableRecords)
	}
	if cs.VulnerableCerts != 2 {
		t.Errorf("vuln certs = %d, want 2", cs.VulnerableCerts)
	}
}

func TestProtocolBreakdown(t *testing.T) {
	f := newFixture(t)
	// Add an SSH scan with one vulnerable key.
	vulnN := big.NewInt(0xBEEF0001)
	f.vuln[string(vulnN.Bytes())] = true
	sshDate := time.Date(2015, 10, 29, 0, 0, 0, 0, time.UTC)
	f.store.AddBareKeyObservation("s1", sshDate, scanstore.SourceCensys, scanstore.SSH, vulnN)
	f.store.AddBareKeyObservation("s2", sshDate, scanstore.SourceCensys, scanstore.SSH, big.NewInt(0xBEEF0003))

	rows := f.analyzer().ProtocolBreakdown([]scanstore.Protocol{scanstore.HTTPS, scanstore.SSH, scanstore.POP3S})
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	if rows[0].Protocol != scanstore.HTTPS || rows[0].TotalHosts != 4 || rows[0].VulnerableHosts != 2 {
		t.Errorf("HTTPS row: %+v", rows[0])
	}
	if rows[1].TotalHosts != 2 || rows[1].VulnerableHosts != 1 {
		t.Errorf("SSH row: %+v", rows[1])
	}
	if rows[2].TotalHosts != 0 || rows[2].VulnerableHosts != 0 {
		t.Errorf("POP3S row should be empty: %+v", rows[2])
	}
}

func TestVendorsList(t *testing.T) {
	a := newFixture(t).analyzer()
	got := a.Vendors()
	if fmt.Sprint(got) != "[VendorA VendorB]" {
		t.Errorf("vendors: %v", got)
	}
}

func TestModelFiltering(t *testing.T) {
	// Model-scoped series: label certs with models and filter.
	store := scanstore.New()
	labels := make(map[[32]byte]fingerprint.Label)
	vuln := map[string]bool{}
	c1 := mkCert(t, 10, "rv082")
	c2 := mkCert(t, 11, "rv120w")
	for i, c := range []*certs.Certificate{c1, c2} {
		fp, _ := c.Fingerprint()
		labels[fp] = fingerprint.Label{Vendor: "Cisco", Model: []string{"RV082", "RV120W"}[i], Method: fingerprint.BySubject}
	}
	d := time.Date(2013, 1, 15, 0, 0, 0, 0, time.UTC)
	store.AddCertObservation("ip1", d, scanstore.SourceEcosystem, scanstore.HTTPS, c1)
	store.AddCertObservation("ip2", d, scanstore.SourceEcosystem, scanstore.HTTPS, c2)
	a := New(store, labels, vuln)
	if s := a.VendorSeries("Cisco", "RV082"); s.Total[0] != 1 {
		t.Errorf("model filter: %v", s.Total)
	}
	if s := a.VendorSeries("Cisco", ""); s.Total[0] != 2 {
		t.Errorf("vendor filter: %v", s.Total)
	}
}

func TestStripIntermediates(t *testing.T) {
	store := scanstore.New()
	labels := make(map[[32]byte]fingerprint.Label)
	// A leaf issued by "Acme Device CA" and the CA cert itself, both at
	// the same IP and date (the Rapid7 recording pattern), plus an
	// unrelated self-signed host.
	leaf := mkCert(t, 30, "acme-router-1")
	leaf.Issuer = certs.Name{CommonName: "Acme Device CA", Organization: "Acme"}
	ca := mkCert(t, 31, "Acme Device CA")
	ca.Subject.Organization = "Acme"
	ca.Issuer = ca.Subject
	self := mkCert(t, 32, "self-signed-host")

	d := time.Date(2014, 6, 15, 0, 0, 0, 0, time.UTC)
	for _, c := range []*certs.Certificate{leaf, ca} {
		if err := store.AddCertObservation("ip1", d, scanstore.SourceRapid7, scanstore.HTTPS, c); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.AddCertObservation("ip2", d, scanstore.SourceRapid7, scanstore.HTTPS, self); err != nil {
		t.Fatal(err)
	}
	// The same CA cert alone at a third IP (no leaf naming it there):
	// nothing to reconstruct, so it stays.
	if err := store.AddCertObservation("ip3", d, scanstore.SourceRapid7, scanstore.HTTPS, ca); err != nil {
		t.Fatal(err)
	}

	got := StripIntermediates(store)
	if len(got) != 3 {
		t.Fatalf("records after stripping = %d, want 3", len(got))
	}
	caFP, _ := ca.Fingerprint()
	for _, r := range got {
		if r.IP == "ip1" && r.CertFP == caFP {
			t.Error("intermediate kept at ip1")
		}
	}
	a := New(store, labels, nil)
	s := a.AggregateSeries()
	if s.Total[0] != 3 {
		t.Errorf("aggregate total = %d, want 3 (intermediate excluded)", s.Total[0])
	}
}

func TestLargestVulnDrop(t *testing.T) {
	mk := func(y, m int) time.Time { return time.Date(y, time.Month(m), 15, 0, 0, 0, 0, time.UTC) }
	s := Series{
		Dates: []time.Time{mk(2014, 2), mk(2014, 3), mk(2014, 4), mk(2014, 5)},
		Vuln:  []int{50, 55, 54, 30},
		Total: []int{100, 100, 100, 100},
	}
	from, to, drop := LargestVulnDrop(s)
	if drop != 24 || !from.Equal(mk(2014, 4)) || !to.Equal(mk(2014, 5)) {
		t.Errorf("drop %d between %v and %v", drop, from, to)
	}
	// A series with no decline yields zero.
	s2 := Series{Dates: s.Dates, Vuln: []int{1, 2, 3, 4}, Total: s.Total}
	if _, _, d := LargestVulnDrop(s2); d != 0 {
		t.Errorf("monotone series drop = %d", d)
	}
	if _, _, d := LargestVulnDrop(Series{}); d != 0 {
		t.Errorf("empty series drop = %d", d)
	}
}

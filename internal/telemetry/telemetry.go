// Package telemetry is the live observability layer of the study: a
// stdlib-only metrics registry (atomic counters, gauges and fixed-bucket
// histograms with a consistent snapshot API), lightweight span tracing
// exported as Chrome trace_event JSON, and a diagnostics HTTP server
// serving /metrics (Prometheus text exposition), /debug/vars
// (expvar-style JSON) and net/http/pprof.
//
// The paper's scaling story is a cost ledger — wall clock, CPU hours and
// per-node memory for every batch-GCD step on a 22-node cluster — and
// sustained measurement systems (ZMap and its descendants) live or die
// by continuous rate/error telemetry on their scan loops. The pipeline's
// RunReport is that ledger post-mortem; this package makes the same
// quantities observable while a run is live.
//
// Every handle type is nil-safe: methods on a nil *Counter, *Gauge,
// *Histogram, *Tracer or *Span are no-ops, and a nil *Registry hands out
// nil handles. Instrumentation call sites therefore never branch on
// "is telemetry enabled" — they record unconditionally and disabling
// telemetry costs one predicted branch per operation.
//
// Metric names follow Prometheus conventions and may carry inline
// labels, e.g. pipeline_stage_items_out{stage="Dedup"}. The full string
// is the registry key; the exposition writer understands the brace
// syntax when grouping TYPE lines and splicing the histogram "le" label.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (nil-safe). Negative deltas are
// ignored: counters only go up.
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one (nil-safe).
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count (nil-safe).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v (nil-safe).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta to the gauge with a CAS loop (nil-safe).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (nil-safe).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry holds named metrics. The zero value is not usable; call New.
// All methods are safe for concurrent use, and handles are get-or-create
// so independent packages agree on a metric by naming it identically.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later calls reuse the existing
// buckets regardless of the argument). A nil registry returns a nil
// (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// CounterValue reads a counter by name without creating it (0 if absent).
func (r *Registry) CounterValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.counters[name].Value()
}

// GaugeValue reads a gauge by name without creating it (0 if absent).
func (r *Registry) GaugeValue(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gauges[name].Value()
}

// CounterSnapshot is one counter's state.
type CounterSnapshot struct {
	Name  string
	Value int64
}

// GaugeSnapshot is one gauge's state.
type GaugeSnapshot struct {
	Name  string
	Value float64
}

// HistogramSnapshot is one histogram's state. Counts are per-bucket
// (not cumulative); Counts[len(Bounds)] is the overflow (+Inf) bucket.
type HistogramSnapshot struct {
	Name   string
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot is a point-in-time copy of every metric, sorted by name.
type Snapshot struct {
	Counters   []CounterSnapshot
	Gauges     []GaugeSnapshot
	Histograms []HistogramSnapshot
}

// Snapshot copies the registry's current state. Each metric is read
// atomically; the snapshot as a whole is not a single atomic cut, which
// is the standard scrape semantics. A nil registry yields an empty
// snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, h.snapshot(name))
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

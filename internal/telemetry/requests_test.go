package telemetry

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRequestTrackerNilSafe(t *testing.T) {
	var tr *RequestTracker
	a := tr.Start("check", "id")
	if a != nil {
		t.Fatalf("nil tracker Start = %v, want nil", a)
	}
	a.Set("k", 1) // must not panic
	a.Finish("ok")
	st := tr.State()
	if len(st.Active)+len(st.Recent)+len(st.Slowest) != 0 {
		t.Fatalf("nil tracker State = %+v, want empty", st)
	}
}

func TestRequestTrackerLifecycle(t *testing.T) {
	tr := NewRequestTracker(4, 2)
	clock := fixedClock()
	tr.clock = clock

	a := tr.Start("check", "req-1")
	a.Set("verdict", "factored")

	st := tr.State()
	if len(st.Active) != 1 || st.Active[0].RequestID != "req-1" || st.Active[0].Outcome != "" {
		t.Fatalf("active = %+v", st.Active)
	}

	a.Finish("factored")
	st = tr.State()
	if len(st.Active) != 0 {
		t.Fatalf("still active after Finish: %+v", st.Active)
	}
	if len(st.Recent) != 1 || st.Recent[0].Outcome != "factored" {
		t.Fatalf("recent = %+v", st.Recent)
	}
	if st.Recent[0].Fields["verdict"] != "factored" {
		t.Fatalf("fields lost: %+v", st.Recent[0].Fields)
	}
	if st.Recent[0].LatencyMS <= 0 {
		t.Fatalf("latency = %v, want > 0", st.Recent[0].LatencyMS)
	}

	// Double finish is a no-op, not a duplicate record.
	a.Finish("again")
	if st = tr.State(); len(st.Recent) != 1 {
		t.Fatalf("double Finish duplicated the record: %+v", st.Recent)
	}
}

func TestRequestTrackerRecentRingAndSlowest(t *testing.T) {
	tr := NewRequestTracker(4, 2)
	// Each request takes (i+1) clock ticks via one extra State-free Set;
	// instead drive latency directly with a controllable clock.
	now := time.Unix(1000, 0)
	tr.clock = func() time.Time { return now }

	latencies := []time.Duration{5, 1, 9, 3, 7, 2} // milliseconds
	for i, ms := range latencies {
		start := now
		a := tr.Start("check", fmt.Sprintf("req-%d", i))
		now = start.Add(ms * time.Millisecond)
		a.Finish("ok")
	}

	st := tr.State()
	// Recent keeps the newest 4, newest first.
	if len(st.Recent) != 4 {
		t.Fatalf("recent has %d, want 4", len(st.Recent))
	}
	wantOrder := []string{"req-5", "req-4", "req-3", "req-2"}
	for i, want := range wantOrder {
		if st.Recent[i].RequestID != want {
			t.Fatalf("recent[%d] = %q, want %q (full: %+v)", i, st.Recent[i].RequestID, want, st.Recent)
		}
	}
	// Slowest keeps the top 2 by latency: 9ms (req-2) then 7ms (req-4).
	if len(st.Slowest) != 2 {
		t.Fatalf("slowest has %d, want 2", len(st.Slowest))
	}
	if st.Slowest[0].RequestID != "req-2" || st.Slowest[1].RequestID != "req-4" {
		t.Fatalf("slowest = %+v", st.Slowest)
	}
}

func TestRequestTrackerConcurrent(t *testing.T) {
	tr := NewRequestTracker(64, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a := tr.Start("check", fmt.Sprintf("w%d-%d", w, i))
				a.Set("i", i)
				a.Finish("ok")
			}
		}(w)
	}
	// Readers race the writers; run under -race.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.State()
		}
	}()
	wg.Wait()
	<-done

	st := tr.State()
	if len(st.Active) != 0 {
		t.Fatalf("%d requests leaked in active", len(st.Active))
	}
	if len(st.Recent) != 64 {
		t.Fatalf("recent has %d, want 64", len(st.Recent))
	}
}

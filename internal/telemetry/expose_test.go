package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exact exposition output for a fixed
// registry: TYPE lines per family (emitted once even across labelled
// variants), counters, gauges, and the cumulative histogram rendering
// with the spliced le label.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	r.Counter(`scanner_errors_total{cause="dial"}`).Add(3)
	r.Counter(`scanner_errors_total{cause="handshake"}`).Add(1)
	r.Gauge("distgcd_moduli").Set(4096)
	h := r.Histogram(`rpc_seconds{svc="a"}`, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE scanner_errors_total counter
scanner_errors_total{cause="dial"} 3
scanner_errors_total{cause="handshake"} 1
# TYPE distgcd_moduli gauge
distgcd_moduli 4096
# TYPE rpc_seconds histogram
rpc_seconds_bucket{svc="a",le="0.1"} 1
rpc_seconds_bucket{svc="a",le="1"} 2
rpc_seconds_bucket{svc="a",le="+Inf"} 3
rpc_seconds_sum{svc="a"} 2.55
rpc_seconds_count{svc="a"} 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestSpliceLabel(t *testing.T) {
	for _, tc := range []struct {
		name, suffix, extra, want string
	}{
		{"x", "_bucket", `le="1"`, `x_bucket{le="1"}`},
		{`x{a="b"}`, "_bucket", `le="1"`, `x_bucket{a="b",le="1"}`},
		{`x{a="b"}`, "_sum", "", `x_sum{a="b"}`},
		{"x", "_count", "", "x_count"},
	} {
		if got := spliceLabel(tc.name, tc.suffix, tc.extra); got != tc.want {
			t.Errorf("spliceLabel(%q,%q,%q) = %q, want %q", tc.name, tc.suffix, tc.extra, got, tc.want)
		}
	}
}

func TestWriteVarsIsValidJSON(t *testing.T) {
	r := New()
	r.Counter("requests_total").Add(7)
	r.Gauge("temp").Set(21.5)
	r.Histogram("lat", []float64{1}).Observe(0.5)
	var sb strings.Builder
	if err := r.Snapshot().WriteVars(&sb); err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &vars); err != nil {
		t.Fatalf("vars output is not valid JSON: %v\n%s", err, sb.String())
	}
	if vars["requests_total"] != float64(7) {
		t.Errorf("requests_total = %v, want 7", vars["requests_total"])
	}
	if vars["temp"] != 21.5 {
		t.Errorf("temp = %v, want 21.5", vars["temp"])
	}
	for _, key := range []string{"cmdline", "memstats", "lat"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("vars missing %q", key)
		}
	}
	lat := vars["lat"].(map[string]any)
	if lat["count"] != float64(1) || lat["sum"] != 0.5 {
		t.Errorf("lat = %v", lat)
	}
}

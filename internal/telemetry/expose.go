package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per metric family, counters
// and gauges as plain samples, histograms as cumulative _bucket samples
// with the spliced le label plus _sum and _count.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	typed := make(map[string]bool)
	typeLine := func(name, kind string) {
		base := baseName(name)
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		}
	}
	for _, c := range s.Counters {
		typeLine(c.Name, "counter")
		fmt.Fprintf(w, "%s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		typeLine(g.Name, "gauge")
		fmt.Fprintf(w, "%s %s\n", g.Name, formatFloat(g.Value))
	}
	for _, h := range s.Histograms {
		typeLine(h.Name, "histogram")
		cum := uint64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(w, "%s %d\n", spliceLabel(h.Name, "_bucket", `le="`+formatFloat(bound)+`"`), cum)
		}
		fmt.Fprintf(w, "%s %d\n", spliceLabel(h.Name, "_bucket", `le="+Inf"`), h.Count)
		fmt.Fprintf(w, "%s %s\n", spliceLabel(h.Name, "_sum", ""), formatFloat(h.Sum))
		fmt.Fprintf(w, "%s %d\n", spliceLabel(h.Name, "_count", ""), h.Count)
	}
	return nil
}

// baseName strips the inline {labels} suffix off a metric name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// spliceLabel appends suffix to the base name and merges extra into the
// inline label set: spliceLabel(`x{a="b"}`, "_bucket", `le="1"`) is
// `x_bucket{a="b",le="1"}`.
func spliceLabel(name, suffix, extra string) string {
	base, labels := name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base = name[:i]
		labels = strings.TrimSuffix(name[i+1:], "}")
	}
	if extra != "" {
		if labels != "" {
			labels += ","
		}
		labels += extra
	}
	if labels == "" {
		return base + suffix
	}
	return base + suffix + "{" + labels + "}"
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteVars renders the snapshot as an expvar-style JSON object: the
// conventional cmdline and memstats keys alongside one key per metric.
// Histograms serialize as {count, sum, buckets:{"le": n, ...}} with
// per-bucket (non-cumulative) counts.
func (s Snapshot) WriteVars(w io.Writer) error {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	vars := map[string]any{
		"cmdline": os.Args,
		"memstats": map[string]any{
			"Alloc":      ms.Alloc,
			"TotalAlloc": ms.TotalAlloc,
			"Sys":        ms.Sys,
			"HeapAlloc":  ms.HeapAlloc,
			"HeapInuse":  ms.HeapInuse,
			"NumGC":      ms.NumGC,
		},
	}
	for _, c := range s.Counters {
		vars[c.Name] = c.Value
	}
	for _, g := range s.Gauges {
		vars[g.Name] = g.Value
	}
	for _, h := range s.Histograms {
		buckets := make(map[string]uint64, len(h.Counts))
		for i, bound := range h.Bounds {
			buckets[formatFloat(bound)] = h.Counts[i]
		}
		buckets["+Inf"] = h.Counts[len(h.Counts)-1]
		vars[h.Name] = map[string]any{
			"count":   h.Count,
			"sum":     h.Sum,
			"buckets": buckets,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(vars)
}

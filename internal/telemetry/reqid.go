package telemetry

import (
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync/atomic"

	"context"
)

// Request correlation: every request entering the serving path gets an
// ID — accepted from the client (X-Request-Id or a W3C traceparent
// trace-id) or minted here — that rides the context through check and
// ingest handlers, cache decisions, shed paths and kernel job
// submission, is echoed on every HTTP response, and tags every event
// the request emits. It is the join key between a keyload error line, a
// /debug/events window and a postmortem bundle.

// reqIDKey carries the request ID through a context.
type reqIDKey struct{}

// ContextWithRequestID returns a context carrying the request ID.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestIDFrom returns the context's request ID, or "".
func RequestIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// reqPrefix is a per-process random prefix so IDs minted by different
// replicas never collide; reqCounter makes them unique within the
// process without a syscall per mint.
var (
	reqPrefix  = mintPrefix()
	reqCounter atomic.Uint64
)

func mintPrefix() string {
	var b [4]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Degraded but functional: uniqueness within the process still
		// holds via the counter.
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}

// MintRequestID issues a fresh process-unique request ID.
func MintRequestID() string {
	return fmt.Sprintf("%s-%06x", reqPrefix, reqCounter.Add(1))
}

// maxRequestIDLen bounds an accepted inbound ID so a hostile client
// cannot stuff kilobytes into every event the request emits.
const maxRequestIDLen = 64

// validRequestID accepts IDs of URL- and log-safe characters only;
// anything else (or empty, or oversized) is replaced by a minted ID.
func validRequestID(s string) bool {
	if s == "" || len(s) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.' || c == ':':
		default:
			return false
		}
	}
	return true
}

// HTTPRequestID resolves the correlation ID for an inbound HTTP
// request: a valid X-Request-Id header wins, then the trace-id of a
// well-formed W3C traceparent header, else a freshly minted ID.
// inbound reports whether the caller supplied it.
func HTTPRequestID(r *http.Request) (id string, inbound bool) {
	if v := r.Header.Get("X-Request-Id"); validRequestID(v) {
		return v, true
	}
	if tid := traceparentTraceID(r.Header.Get("traceparent")); tid != "" {
		return tid, true
	}
	return MintRequestID(), false
}

// traceparentTraceID extracts the 32-hex-digit trace-id from a W3C
// traceparent value ("00-<trace-id>-<parent-id>-<flags>"), or "".
func traceparentTraceID(v string) string {
	// version(2) - traceid(32) - parentid(16) - flags(2)
	if len(v) < 2+1+32+1+16+1+2 || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return ""
	}
	tid := v[3:35]
	zero := true
	for i := 0; i < len(tid); i++ {
		c := tid[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return ""
		}
		if c != '0' {
			zero = false
		}
	}
	if zero {
		return ""
	}
	return tid
}

// eventsKey carries an EventLog through a context, so layers below the
// service boundary (the kernel engine above all) can emit correlated
// events without threading a handle through every signature.
type eventsKey struct{}

// ContextWithEvents returns a context carrying the event log.
func ContextWithEvents(ctx context.Context, l *EventLog) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, eventsKey{}, l)
}

// EventsFrom returns the context's event log, or nil (which is a valid
// no-op EventLog, so callers chain unconditionally).
func EventsFrom(ctx context.Context) *EventLog {
	if ctx == nil {
		return nil
	}
	l, _ := ctx.Value(eventsKey{}).(*EventLog)
	return l
}

package telemetry

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"time"
)

// WriteBundle snapshots the process's observable state into one gzipped
// tar on w — the postmortem artifact attached to an incident instead of
// a dozen hand-collected curl outputs. The bundle contains:
//
//	meta.json       capture time, go version, pid, goroutine count,
//	                plus the Info map (build/config provided by the binary)
//	buildinfo.txt   runtime/debug.ReadBuildInfo (module, vcs revision)
//	metrics.prom    Prometheus text exposition of the registry
//	metrics.json    expvar-style JSON snapshot of the registry
//	events.json     the flight recorder window (structured event log)
//	requests.json   in-flight, recent and slowest tracked requests
//	trace.json      recorded spans as Chrome trace_event JSON
//	goroutines.txt  the full goroutine dump (pprof debug=1)
//	heap.pprof      the heap profile (binary pprof format)
//
// Sections whose source is nil are simply omitted, so a bundle can be
// taken from any partially-wired Diagnostics.
func (d *Diagnostics) WriteBundle(w io.Writer) error {
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	now := time.Now().UTC()

	add := func(name string, data []byte) error {
		hdr := &tar.Header{
			Name:    name,
			Mode:    0o644,
			Size:    int64(len(data)),
			ModTime: now,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return fmt.Errorf("telemetry: bundle %s: %w", name, err)
		}
		if _, err := tw.Write(data); err != nil {
			return fmt.Errorf("telemetry: bundle %s: %w", name, err)
		}
		return nil
	}
	addFrom := func(name string, render func(io.Writer) error) error {
		var buf bytes.Buffer
		if err := render(&buf); err != nil {
			return fmt.Errorf("telemetry: bundle %s: %w", name, err)
		}
		return add(name, buf.Bytes())
	}

	meta := map[string]any{
		"created":    now.Format(time.RFC3339Nano),
		"go_version": runtime.Version(),
		"pid":        os.Getpid(),
		"goroutines": runtime.NumGoroutine(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
	}
	if len(d.Info) > 0 {
		meta["info"] = d.Info
	}
	metaJSON, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	if err := add("meta.json", append(metaJSON, '\n')); err != nil {
		return err
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		if err := add("buildinfo.txt", []byte(bi.String())); err != nil {
			return err
		}
	}
	if d.Registry != nil {
		snap := d.Registry.Snapshot()
		if err := addFrom("metrics.prom", func(w io.Writer) error { return snap.WritePrometheus(w) }); err != nil {
			return err
		}
		if err := addFrom("metrics.json", func(w io.Writer) error { return snap.WriteVars(w) }); err != nil {
			return err
		}
	}
	if d.Events != nil {
		if err := addFrom("events.json", func(w io.Writer) error { return WriteEventsJSON(w, d.Events.Events()) }); err != nil {
			return err
		}
	}
	if d.Requests != nil {
		if err := addFrom("requests.json", func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(d.Requests.State())
		}); err != nil {
			return err
		}
	}
	if d.Tracer != nil {
		if err := addFrom("trace.json", d.Tracer.WriteJSON); err != nil {
			return err
		}
	}
	if err := addFrom("goroutines.txt", func(w io.Writer) error {
		return pprof.Lookup("goroutine").WriteTo(w, 1)
	}); err != nil {
		return err
	}
	if err := addFrom("heap.pprof", func(w io.Writer) error {
		return pprof.Lookup("heap").WriteTo(w, 0)
	}); err != nil {
		return err
	}
	if err := tw.Close(); err != nil {
		return err
	}
	return gz.Close()
}

// WriteBundleFile writes the bundle to path (the keyserverd
// -debug-bundle signal path target).
func (d *Diagnostics) WriteBundleFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteBundle(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

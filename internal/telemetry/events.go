package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// Event is one structured log record as captured by the flight recorder.
// Seq is the process-wide emission order: it increases monotonically
// across the whole EventLog, so readers can order a ring snapshot even
// when writers are racing the wraparound.
type Event struct {
	Seq   uint64
	Time  time.Time
	Level slog.Level
	Msg   string
	Attrs []slog.Attr
}

// Attr returns the string form of the named attribute, or "".
func (e Event) Attr(key string) string {
	for _, a := range e.Attrs {
		if a.Key == key {
			return a.Value.Resolve().String()
		}
	}
	return ""
}

// eventRing is the lock-free flight recorder: a fixed ring of atomic
// pointers with one atomic write cursor. A writer claims a sequence
// number and stores its event into slot (seq-1) % N; readers snapshot
// every slot and sort by Seq. Neither side ever takes a lock, so the
// recorder can sit on the serving hot path, and a reader racing a
// wrapping writer sees a consistent (if slightly torn) window — exactly
// the scrape semantics the metrics registry already has.
type eventRing struct {
	slots  []atomic.Pointer[Event]
	mask   uint64 // len(slots)-1; size is rounded up to a power of two
	cursor atomic.Uint64
}

func newEventRing(n int) *eventRing {
	size := 1
	for size < n {
		size <<= 1
	}
	return &eventRing{slots: make([]atomic.Pointer[Event], size), mask: uint64(size - 1)}
}

func (r *eventRing) store(ev *Event) {
	ev.Seq = r.cursor.Add(1)
	r.slots[(ev.Seq-1)&r.mask].Store(ev)
}

// snapshot returns the ring's current events ordered by Seq ascending.
func (r *eventRing) snapshot() []Event {
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		if ev := r.slots[i].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// EventConfig tunes an EventLog.
type EventConfig struct {
	// Size is the flight-recorder capacity in events (default 1024,
	// minimum 16, rounded up to a power of two). The last Size events
	// are always available from Events() / /debug/events regardless of
	// the tee configuration.
	Size int
	// Level is the floor below which events are not recorded at all.
	// The zero value keeps everything (slog.LevelDebug) — a flight
	// recorder that drops debug events defeats its purpose — so a floor
	// of exactly slog.LevelInfo is not expressible; floor the tee
	// instead via TeeLevel.
	Level slog.Level
	// Tee, when non-nil, additionally writes events at TeeLevel and
	// above to this writer (normally os.Stderr).
	Tee io.Writer
	// TeeFormat selects the tee encoding: "text" (default) or "json".
	TeeFormat string
	// TeeLevel is the tee's level floor (default slog.LevelInfo).
	TeeLevel slog.Level
	// Clock overrides the event timestamp source (tests inject a fixed
	// clock so golden output never flakes). Default time.Now.
	Clock func() time.Time
}

// EventLog is the third observability pillar next to the metrics
// registry and the span tracer: a structured event log on log/slog
// whose primary sink is an in-memory lock-free flight recorder (the
// last N events are always inspectable, live via /debug/events or post
// mortem via a debug bundle), with an optional level-filtered tee to
// stderr.
//
// Like every other handle in this package, a nil *EventLog is valid and
// all its methods are no-ops, so instrumentation call sites emit
// unconditionally and a disabled event log costs one predicted branch.
type EventLog struct {
	ring     *eventRing
	floor    slog.Level
	tee      slog.Handler
	teeFloor slog.Level
	clock    func() time.Time
}

// NewEventLog builds an event log from cfg.
func NewEventLog(cfg EventConfig) *EventLog {
	if cfg.Size <= 0 {
		cfg.Size = 1024
	}
	if cfg.Size < 16 {
		cfg.Size = 16
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Level == 0 {
		cfg.Level = slog.LevelDebug
	}
	l := &EventLog{
		ring:     newEventRing(cfg.Size),
		floor:    cfg.Level,
		teeFloor: cfg.TeeLevel,
		clock:    cfg.Clock,
	}
	if cfg.Tee != nil {
		opts := &slog.HandlerOptions{Level: cfg.TeeLevel}
		if cfg.TeeFormat == "json" {
			l.tee = slog.NewJSONHandler(cfg.Tee, opts)
		} else {
			l.tee = slog.NewTextHandler(cfg.Tee, opts)
		}
	}
	return l
}

// ParseLevel maps a CLI level name (debug, info, warn, error) to its
// slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn or error)", s)
}

// Emit records one event (nil-safe). The request ID riding ctx, if any,
// is attached as a request_id attribute, which is what ties a flight-
// recorder window to one check's journey through the serving path.
func (l *EventLog) Emit(ctx context.Context, level slog.Level, msg string, attrs ...slog.Attr) {
	if l == nil || level < l.floor {
		return
	}
	l.record(ctx, level, msg, attrs)
}

// Debug, Info, Warn and Error are level-fixed forms of Emit (nil-safe).
func (l *EventLog) Debug(ctx context.Context, msg string, attrs ...slog.Attr) {
	l.Emit(ctx, slog.LevelDebug, msg, attrs...)
}

func (l *EventLog) Info(ctx context.Context, msg string, attrs ...slog.Attr) {
	l.Emit(ctx, slog.LevelInfo, msg, attrs...)
}

func (l *EventLog) Warn(ctx context.Context, msg string, attrs ...slog.Attr) {
	l.Emit(ctx, slog.LevelWarn, msg, attrs...)
}

func (l *EventLog) Error(ctx context.Context, msg string, attrs ...slog.Attr) {
	l.Emit(ctx, slog.LevelError, msg, attrs...)
}

// eventAlloc packs an Event together with inline attribute storage so
// the recorder hot path costs a single heap allocation for typical
// attribute counts; larger attribute sets spill into one extra slice.
// Because record only reads the caller's attrs (it copies rather than
// retains them), the variadic slice at an Emit call site never escapes.
type eventAlloc struct {
	ev    Event
	attrs [5]slog.Attr
}

// record is the shared sink behind Emit and the slog handler. attrs is
// owned by the caller's frame (variadic or freshly assembled) and is
// copied, never retained.
func (l *EventLog) record(ctx context.Context, level slog.Level, msg string, attrs []slog.Attr) {
	ea := &eventAlloc{ev: Event{Time: l.clock(), Level: level, Msg: msg}}
	id := RequestIDFrom(ctx)
	if id != "" && hasAttr(attrs, "request_id") {
		id = ""
	}
	total := len(attrs)
	if id != "" {
		total++
	}
	if total <= len(ea.attrs) {
		n := copy(ea.attrs[:], attrs)
		if id != "" {
			ea.attrs[n] = slog.String("request_id", id)
			n++
		}
		ea.ev.Attrs = ea.attrs[:n:n]
	} else {
		out := make([]slog.Attr, 0, total)
		out = append(out, attrs...)
		if id != "" {
			out = append(out, slog.String("request_id", id))
		}
		ea.ev.Attrs = out
	}
	l.ring.store(&ea.ev)
	if l.tee != nil && level >= l.teeFloor {
		rec := slog.NewRecord(ea.ev.Time, level, msg, 0)
		rec.AddAttrs(ea.ev.Attrs...)
		_ = l.tee.Handle(ctx, rec)
	}
}

func hasAttr(attrs []slog.Attr, key string) bool {
	for _, a := range attrs {
		if a.Key == key {
			return true
		}
	}
	return false
}

// Logger returns a *slog.Logger backed by this event log, for callers
// that prefer the stdlib idiom over Emit. A nil receiver returns a
// logger that discards everything.
func (l *EventLog) Logger() *slog.Logger {
	if l == nil {
		return slog.New(discardHandler{})
	}
	return slog.New(&recorderHandler{log: l})
}

// Events returns the flight recorder's current window, oldest first
// (nil-safe).
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	return l.ring.snapshot()
}

// EventsFilter returns the recorder window filtered to events at or
// above minLevel, matching requestID when non-empty, keeping only the
// newest n when n > 0 (nil-safe).
func (l *EventLog) EventsFilter(minLevel slog.Level, requestID string, n int) []Event {
	evs := l.Events()
	out := evs[:0]
	for _, ev := range evs {
		if ev.Level < minLevel {
			continue
		}
		if requestID != "" && ev.Attr("request_id") != requestID {
			continue
		}
		out = append(out, ev)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// recorderHandler adapts the EventLog to slog.Handler so Logger() works
// with the full slog surface (WithAttrs / WithGroup included).
type recorderHandler struct {
	log    *EventLog
	attrs  []slog.Attr
	groups []string
}

func (h *recorderHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= h.log.floor
}

func (h *recorderHandler) Handle(ctx context.Context, rec slog.Record) error {
	attrs := make([]slog.Attr, 0, len(h.attrs)+rec.NumAttrs())
	attrs = append(attrs, h.attrs...)
	rec.Attrs(func(a slog.Attr) bool {
		attrs = append(attrs, h.qualify(a))
		return true
	})
	h.log.record(ctx, rec.Level, rec.Message, attrs)
	return nil
}

// qualify prefixes an attribute key with the open group path, the flat
// rendering of slog groups the recorder uses ("shard.id" rather than a
// nested object).
func (h *recorderHandler) qualify(a slog.Attr) slog.Attr {
	for i := len(h.groups) - 1; i >= 0; i-- {
		a.Key = h.groups[i] + "." + a.Key
	}
	return a
}

func (h *recorderHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := &recorderHandler{log: h.log, groups: h.groups}
	nh.attrs = make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	nh.attrs = append(nh.attrs, h.attrs...)
	for _, a := range attrs {
		nh.attrs = append(nh.attrs, h.qualify(a))
	}
	return nh
}

func (h *recorderHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	nh := &recorderHandler{log: h.log, attrs: h.attrs}
	nh.groups = append(append([]string{}, h.groups...), name)
	return nh
}

// discardHandler drops everything; Logger() on a nil EventLog hands it
// out so disabled logging needs no call-site branches.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// WriteEventJSON renders one event as a single JSON object with a
// stable key order: seq, time, level, msg, then the attributes in
// emission order. The same rendering serves /debug/events, the debug
// bundle and the golden tests.
func WriteEventJSON(w io.Writer, ev Event) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p(`{"seq":%d,"time":%q,"level":%q,"msg":`, ev.Seq, ev.Time.UTC().Format(time.RFC3339Nano), ev.Level.String())
	p("%s", jsonString(ev.Msg))
	for _, a := range ev.Attrs {
		p(",%s:%s", jsonString(a.Key), jsonValue(a.Value))
	}
	p("}")
	return err
}

// WriteEventsJSON renders events as a JSON array, one event per line.
func WriteEventsJSON(w io.Writer, evs []Event) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, ev := range evs {
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		if err := WriteEventJSON(w, ev); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}

func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		return strconv.Quote(s)
	}
	return string(b)
}

// jsonValue renders a slog.Value deterministically: durations as their
// String() form, times as RFC3339Nano, everything else through
// encoding/json (falling back to the string form on marshal failure).
func jsonValue(v slog.Value) string {
	v = v.Resolve()
	switch v.Kind() {
	case slog.KindDuration:
		return jsonString(v.Duration().String())
	case slog.KindTime:
		return jsonString(v.Time().UTC().Format(time.RFC3339Nano))
	}
	b, err := json.Marshal(v.Any())
	if err != nil {
		return jsonString(v.String())
	}
	return string(b)
}

package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// TraceEvent is one Chrome trace_event record ("X" complete events
// only). Load the exported file at chrome://tracing or https://ui.perfetto.dev.
type TraceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds since trace start
	Dur   float64        `json:"dur"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// Tracer records spans and exports them as Chrome trace_event JSON.
// Nesting is positional, the trace_event way: spans on the same track
// (TID) nest by time containment, so a stage span with per-node child
// spans on distinct tracks renders as one row per node under the stage
// row. A nil *Tracer is a valid no-op tracer.
type Tracer struct {
	mu     sync.Mutex
	t0     time.Time
	events []TraceEvent
}

// NewTracer creates a tracer whose timestamps are relative to now.
func NewTracer() *Tracer {
	return &Tracer{t0: time.Now()}
}

// Span is one in-flight named interval. End it exactly once; Child
// spans opened from it inherit its track unless ChildTrack is used.
// A nil *Span is a valid no-op span.
type Span struct {
	tracer *Tracer
	name   string
	tid    int
	start  time.Time

	mu    sync.Mutex
	args  map[string]any
	ended bool
}

// Start opens a top-level span on track 0 (nil-safe).
func (t *Tracer) Start(name string) *Span {
	return t.span(name, 0)
}

func (t *Tracer) span(name string, tid int) *Span {
	if t == nil {
		return nil
	}
	return &Span{tracer: t, name: name, tid: tid, start: time.Now()}
}

// Child opens a nested span on the same track (nil-safe).
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	return sp.tracer.span(name, sp.tid)
}

// ChildTrack opens a nested span on its own track — one row per
// concurrent worker in the trace view (nil-safe).
func (sp *Span) ChildTrack(name string, track int) *Span {
	if sp == nil {
		return nil
	}
	return sp.tracer.span(name, track)
}

// SetArg attaches a key/value shown in the trace viewer's detail pane
// (nil-safe).
func (sp *Span) SetArg(key string, v any) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.args == nil {
		sp.args = make(map[string]any)
	}
	sp.args[key] = v
	sp.mu.Unlock()
}

// End closes the span and records its event. Extra Ends are ignored
// (nil-safe).
func (sp *Span) End() {
	if sp == nil {
		return
	}
	end := time.Now()
	sp.mu.Lock()
	if sp.ended {
		sp.mu.Unlock()
		return
	}
	sp.ended = true
	args := sp.args
	sp.mu.Unlock()
	t := sp.tracer
	ev := TraceEvent{
		Name:  sp.name,
		Phase: "X",
		TS:    float64(sp.start.Sub(t.t0).Nanoseconds()) / 1e3,
		Dur:   float64(end.Sub(sp.start).Nanoseconds()) / 1e3,
		PID:   1,
		TID:   sp.tid,
		Args:  args,
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Events returns a copy of the recorded events (nil-safe).
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	return out
}

// WriteJSON writes the trace in the Chrome trace_event JSON object
// format (nil-safe: a nil tracer writes an empty trace).
func (t *Tracer) WriteJSON(w io.Writer) error {
	events := t.Events()
	if events == nil {
		events = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}

// WriteFile writes the trace to path (nil-safe).
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// spanKey carries the current span through a context.
type spanKey struct{}

// ContextWithSpan returns a context carrying sp as the current span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFrom returns the context's current span, or nil (which is a valid
// no-op span, so callers chain unconditionally:
// telemetry.SpanFrom(ctx).Child("phase")).
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func fetch(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestDiagnosticsRoundTrip drives the full mux over real HTTP: /metrics
// exposition, /debug/vars JSON, and the pprof index.
func TestDiagnosticsRoundTrip(t *testing.T) {
	reg := New()
	reg.Counter("requests_total").Add(12)
	reg.Gauge("inflight").Set(3)
	reg.Histogram("lat_seconds", []float64{0.1, 1}).Observe(0.05)

	ts := httptest.NewServer(NewMux(reg))
	defer ts.Close()

	code, body := fetch(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		"# TYPE requests_total counter",
		"requests_total 12",
		"inflight 3",
		`lat_seconds_bucket{le="0.1"} 1`,
		"lat_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	// A scrape after more traffic sees the new values (live, not cached).
	reg.Counter("requests_total").Add(5)
	_, body = fetch(t, ts.URL+"/metrics")
	if !strings.Contains(body, "requests_total 17") {
		t.Errorf("second scrape should see 17:\n%s", body)
	}

	code, body = fetch(t, ts.URL+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if vars["requests_total"] != float64(17) {
		t.Errorf("vars requests_total = %v, want 17", vars["requests_total"])
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("vars missing memstats")
	}

	code, body = fetch(t, ts.URL+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index looks wrong:\n%.200s", body)
	}
}

func TestListenAndServeBindsEphemeralPort(t *testing.T) {
	reg := New()
	reg.Counter("x").Inc()
	srv, err := ListenAndServe("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if strings.HasSuffix(srv.Addr, ":0") {
		t.Fatalf("Addr %q still has port 0", srv.Addr)
	}
	code, body := fetch(t, "http://"+srv.Addr+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "x 1") {
		t.Errorf("scrape = %d %q", code, body)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + srv.Addr + "/metrics"); err == nil {
		t.Error("server should refuse connections after Close")
	}
}

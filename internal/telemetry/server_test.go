package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func fetch(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestDiagnosticsRoundTrip drives the full mux over real HTTP: /metrics
// exposition, /debug/vars JSON, and the pprof index.
func TestDiagnosticsRoundTrip(t *testing.T) {
	reg := New()
	reg.Counter("requests_total").Add(12)
	reg.Gauge("inflight").Set(3)
	reg.Histogram("lat_seconds", []float64{0.1, 1}).Observe(0.05)

	ts := httptest.NewServer(NewMux(reg))
	defer ts.Close()

	code, body := fetch(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		"# TYPE requests_total counter",
		"requests_total 12",
		"inflight 3",
		`lat_seconds_bucket{le="0.1"} 1`,
		"lat_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	// A scrape after more traffic sees the new values (live, not cached).
	reg.Counter("requests_total").Add(5)
	_, body = fetch(t, ts.URL+"/metrics")
	if !strings.Contains(body, "requests_total 17") {
		t.Errorf("second scrape should see 17:\n%s", body)
	}

	code, body = fetch(t, ts.URL+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if vars["requests_total"] != float64(17) {
		t.Errorf("vars requests_total = %v, want 17", vars["requests_total"])
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("vars missing memstats")
	}

	code, body = fetch(t, ts.URL+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index looks wrong:\n%.200s", body)
	}
}

// TestDebugEndpoints drives the observability additions: the event
// window with its filters, the request ledger, and the bundle download.
func TestDebugEndpoints(t *testing.T) {
	reg := New()
	events := NewEventLog(EventConfig{Clock: fixedClock()})
	requests := NewRequestTracker(8, 4)
	d := &Diagnostics{Registry: reg, Events: events, Requests: requests}

	ctx := ContextWithRequestID(context.Background(), "req-a")
	events.Info(ctx, "check served")
	events.Warn(context.Background(), "check shed")

	a := requests.Start("check", "req-a")
	a.Finish("clean")

	ts := httptest.NewServer(d.Mux())
	defer ts.Close()

	code, body := fetch(t, ts.URL+"/debug/events")
	if code != http.StatusOK {
		t.Fatalf("/debug/events status = %d", code)
	}
	var evs []map[string]any
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatalf("/debug/events not JSON: %v\n%s", err, body)
	}
	if len(evs) != 2 {
		t.Fatalf("/debug/events returned %d events, want 2", len(evs))
	}

	// level filter keeps only the warn.
	_, body = fetch(t, ts.URL+"/debug/events?level=warn")
	evs = nil
	json.Unmarshal([]byte(body), &evs)
	if len(evs) != 1 || evs[0]["msg"] != "check shed" {
		t.Fatalf("level=warn gave %v", evs)
	}

	// request_id filter keeps only the correlated event.
	_, body = fetch(t, ts.URL+"/debug/events?request_id=req-a")
	evs = nil
	json.Unmarshal([]byte(body), &evs)
	if len(evs) != 1 || evs[0]["msg"] != "check served" {
		t.Fatalf("request_id filter gave %v", evs)
	}

	// Bad parameters are 400s.
	if code, _ = fetch(t, ts.URL+"/debug/events?level=loud"); code != http.StatusBadRequest {
		t.Fatalf("level=loud status = %d, want 400", code)
	}
	if code, _ = fetch(t, ts.URL+"/debug/events?n=zero"); code != http.StatusBadRequest {
		t.Fatalf("n=zero status = %d, want 400", code)
	}

	code, body = fetch(t, ts.URL+"/debug/requests")
	if code != http.StatusOK {
		t.Fatalf("/debug/requests status = %d", code)
	}
	var st TrackerState
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/debug/requests not JSON: %v", err)
	}
	if len(st.Recent) != 1 || st.Recent[0].RequestID != "req-a" {
		t.Fatalf("/debug/requests recent = %+v", st.Recent)
	}

	resp, err := http.Get(ts.URL + "/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "application/gzip" {
		t.Fatalf("/debug/bundle Content-Type = %q", got)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	files := readBundle(t, raw)
	for _, want := range []string{"meta.json", "metrics.prom", "events.json", "requests.json"} {
		if _, ok := files[want]; !ok {
			t.Errorf("/debug/bundle missing %s", want)
		}
	}
}

func TestListenAndServeBindsEphemeralPort(t *testing.T) {
	reg := New()
	reg.Counter("x").Inc()
	srv, err := ListenAndServe("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if strings.HasSuffix(srv.Addr, ":0") {
		t.Fatalf("Addr %q still has port 0", srv.Addr)
	}
	code, body := fetch(t, "http://"+srv.Addr+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "x 1") {
		t.Errorf("scrape = %d %q", code, body)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + srv.Addr + "/metrics"); err == nil {
		t.Error("server should refuse connections after Close")
	}
}

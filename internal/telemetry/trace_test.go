package telemetry

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTracerRecordsNestedSpans(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("pipeline")
	stage := root.Child("BatchGCD")
	node := stage.ChildTrack("node0.build", 1)
	node.SetArg("moduli", 42)
	node.End()
	stage.End()
	root.End()
	root.End() // double End must not duplicate

	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	// Events record at End, so innermost first.
	byName := map[string]TraceEvent{}
	for _, ev := range events {
		byName[ev.Name] = ev
	}
	n, s, r := byName["node0.build"], byName["BatchGCD"], byName["pipeline"]
	if n.TID != 1 || s.TID != 0 || r.TID != 0 {
		t.Errorf("tids = %d/%d/%d, want 1/0/0", n.TID, s.TID, r.TID)
	}
	if n.Args["moduli"] != 42 {
		t.Errorf("args = %v", n.Args)
	}
	// Time containment: parent starts no later and ends no earlier.
	if s.TS > n.TS || s.TS+s.Dur < n.TS+n.Dur {
		t.Errorf("stage span [%g,%g] does not contain node span [%g,%g]",
			s.TS, s.TS+s.Dur, n.TS, n.TS+n.Dur)
	}
	if r.TS > s.TS || r.TS+r.Dur < s.TS+s.Dur {
		t.Errorf("root span does not contain stage span")
	}
}

// TestTraceJSONWellFormed re-parses the export and checks the Chrome
// trace_event envelope: a traceEvents array of ph="X" events with
// non-negative ts/dur and pid/tid set.
func TestTraceJSONWellFormed(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("a")
	sp.Child("b").End()
	sp.End()

	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents     []TraceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, sb.String())
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", trace.DisplayTimeUnit)
	}
	if len(trace.TraceEvents) != 2 {
		t.Fatalf("traceEvents = %d, want 2", len(trace.TraceEvents))
	}
	for _, ev := range trace.TraceEvents {
		if ev.Phase != "X" {
			t.Errorf("event %q phase = %q, want X", ev.Name, ev.Phase)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Errorf("event %q has negative ts/dur: %g/%g", ev.Name, ev.TS, ev.Dur)
		}
		if ev.PID != 1 {
			t.Errorf("event %q pid = %d, want 1", ev.Name, ev.PID)
		}
	}
}

func TestNilTracerAndSpanAreNoops(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	if sp != nil {
		t.Fatal("nil tracer should hand out nil spans")
	}
	sp.SetArg("k", "v")
	sp.End()
	child := sp.Child("y")
	child.End()
	if sp.ChildTrack("z", 3) != nil {
		t.Error("nil span children should be nil")
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"traceEvents":[]`) {
		t.Errorf("nil tracer should export an empty trace: %s", sb.String())
	}
}

func TestSpanContextRoundTrip(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("root")
	ctx := ContextWithSpan(context.Background(), sp)
	if got := SpanFrom(ctx); got != sp {
		t.Error("SpanFrom should return the stored span")
	}
	if got := SpanFrom(context.Background()); got != nil {
		t.Error("SpanFrom on a bare context should be nil")
	}
	// The nil result chains safely.
	SpanFrom(context.Background()).Child("x").End()
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("root")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sp := root.ChildTrack("work", i+1)
				sp.SetArg("j", j)
				sp.End()
			}
		}(i)
	}
	wg.Wait()
	root.End()
	if got := len(tr.Events()); got != 801 {
		t.Errorf("events = %d, want 801", got)
	}
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Diagnostics bundles the observability pillars one process serves on
// its private diagnostics mux: the metrics registry, the structured
// event log (flight recorder), the request tracker and the span tracer.
// Any field may be nil; the corresponding endpoints degrade to empty
// documents and the bundle omits the section.
type Diagnostics struct {
	Registry *Registry
	Events   *EventLog
	Requests *RequestTracker
	Tracer   *Tracer
	// Info is free-form build/config identification (binary name,
	// flags, corpus path, ...) included in /debug/bundle's meta.json.
	Info map[string]string
}

// Mux builds the diagnostics handler set:
//
//	/metrics         Prometheus text exposition
//	/debug/vars      expvar-style JSON snapshot
//	/debug/pprof     the standard pprof index, profile, trace, symbol
//	/debug/events    flight-recorder window (?level=, ?request_id=, ?n=)
//	/debug/requests  in-flight, recent and slowest tracked requests
//	/debug/bundle    gzipped tar postmortem bundle (see WriteBundle)
//
// Everything is mounted on this private mux, not http.DefaultServeMux,
// so importing this package never leaks profiling endpoints into an
// application's own server.
func (d *Diagnostics) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		d.Registry.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		d.Registry.Snapshot().WriteVars(w)
	})
	mux.HandleFunc("/debug/events", d.handleEvents)
	mux.HandleFunc("/debug/requests", d.handleRequests)
	mux.HandleFunc("/debug/bundle", d.handleBundle)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleEvents serves the flight-recorder window as a JSON array,
// oldest first. Query parameters: level (debug|info|warn|error) floors
// the severity, request_id keeps only one request's events, n keeps the
// newest n (default 256, max the ring size).
func (d *Diagnostics) handleEvents(w http.ResponseWriter, r *http.Request) {
	level := slog.LevelDebug
	if q := r.URL.Query().Get("level"); q != "" {
		var err error
		if level, err = ParseLevel(q); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	n := 256
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			http.Error(w, "telemetry: n must be a positive integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	evs := d.Events.EventsFilter(level, r.URL.Query().Get("request_id"), n)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	WriteEventsJSON(w, evs)
}

// handleRequests serves the request tracker state as JSON.
func (d *Diagnostics) handleRequests(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	writeJSONIndent(w, d.Requests.State())
}

// handleBundle streams a postmortem bundle.
func (d *Diagnostics) handleBundle(w http.ResponseWriter, r *http.Request) {
	name := fmt.Sprintf("debug-bundle-%s.tar.gz", time.Now().UTC().Format("20060102-150405"))
	w.Header().Set("Content-Type", "application/gzip")
	w.Header().Set("Content-Disposition", `attachment; filename="`+name+`"`)
	if err := d.WriteBundle(w); err != nil {
		// Headers are gone; the truncated body will fail the client's
		// gzip check, which is the honest signal.
		d.Events.Error(r.Context(), "debug bundle failed", slog.String("error", err.Error()))
	}
}

func writeJSONIndent(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// NewMux builds the diagnostics handler set for a bare registry — the
// metrics-only form predating Diagnostics; /debug/events, /debug/requests
// and /debug/bundle serve empty documents.
func NewMux(reg *Registry) *http.ServeMux {
	return (&Diagnostics{Registry: reg}).Mux()
}

// Server is a running diagnostics HTTP server.
type Server struct {
	// Addr is the bound address, with the real port when the listen
	// address requested :0.
	Addr string
	srv  *http.Server
	ln   net.Listener
}

// ListenAndServe starts a metrics-only diagnostics server on addr
// (":8080", "127.0.0.1:0", ...). See Diagnostics.ListenAndServe for the
// full-pillar form.
func ListenAndServe(addr string, reg *Registry) (*Server, error) {
	return (&Diagnostics{Registry: reg}).ListenAndServe(addr)
}

// ListenAndServe starts the diagnostics server on addr and returns once
// the listener is bound; requests are served on a background goroutine.
// Close releases it.
func (d *Diagnostics) ListenAndServe(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	// The write timeout must outlast /debug/pprof's 30s default profile
	// window; read/idle just need to evict stuck or abandoned scrapers.
	srv := &http.Server{
		Handler:           d.Mux(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	s := &Server{Addr: ln.Addr().String(), srv: srv, ln: ln}
	go srv.Serve(ln)
	return s, nil
}

// Close stops the server and its listener.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewMux builds the diagnostics handler set for a registry:
//
//	/metrics      Prometheus text exposition
//	/debug/vars   expvar-style JSON snapshot
//	/debug/pprof  the standard pprof index, profile, trace, symbol
//
// The pprof handlers are mounted on this private mux, not the
// http.DefaultServeMux, so importing this package never leaks profiling
// endpoints into an application's own server.
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		reg.Snapshot().WriteVars(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running diagnostics HTTP server.
type Server struct {
	// Addr is the bound address, with the real port when the listen
	// address requested :0.
	Addr string
	srv  *http.Server
	ln   net.Listener
}

// ListenAndServe starts the diagnostics server on addr (":8080",
// "127.0.0.1:0", ...) and returns once the listener is bound; requests
// are served on a background goroutine. Close releases it.
func ListenAndServe(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewMux(reg), ReadHeaderTimeout: 5 * time.Second}
	s := &Server{Addr: ln.Addr().String(), srv: srv, ln: ln}
	go srv.Serve(ln)
	return s, nil
}

// Close stops the server and its listener.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

package telemetry

import (
	"testing"
)

// The instrumentation hot-path guards: counter increments and histogram
// observations must stay in the low nanoseconds, since the scanner and
// simulation loops call them per target / per observation. make ci runs
// these with a fixed iteration count as a smoke guard.

func BenchmarkCounterAdd(b *testing.B) {
	c := New().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	c := New().Counter("bench_total")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkNilCounterAdd(b *testing.B) {
	var c *Counter // telemetry disabled: the cost is one branch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("bench_seconds", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := New().Histogram("bench_seconds", DurationBuckets)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.003)
		}
	})
}

func BenchmarkRegistryLookup(b *testing.B) {
	// The get-or-create path callers should hoist out of hot loops.
	r := New()
	r.Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("bench_total")
	}
}

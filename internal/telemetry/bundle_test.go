package telemetry

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"strings"
	"testing"
)

// readBundle decompresses a bundle into name -> contents.
func readBundle(t *testing.T, data []byte) map[string][]byte {
	t.Helper()
	gz, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("bundle is not gzip: %v", err)
	}
	tr := tar.NewReader(gz)
	out := make(map[string][]byte)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("bundle tar: %v", err)
		}
		body, err := io.ReadAll(tr)
		if err != nil {
			t.Fatalf("bundle entry %s: %v", hdr.Name, err)
		}
		out[hdr.Name] = body
	}
	return out
}

func TestWriteBundleRoundTrip(t *testing.T) {
	reg := New()
	reg.Counter("checks_total").Add(3)
	events := NewEventLog(EventConfig{Clock: fixedClock()})
	ctx := ContextWithRequestID(context.Background(), "bundle-req")
	events.Info(ctx, "check served", slog.String("verdict", "clean"))
	requests := NewRequestTracker(8, 4)
	requests.Start("check", "bundle-req").Finish("clean")

	d := &Diagnostics{
		Registry: reg,
		Events:   events,
		Requests: requests,
		Info:     map[string]string{"binary": "test"},
	}
	var buf bytes.Buffer
	if err := d.WriteBundle(&buf); err != nil {
		t.Fatal(err)
	}
	files := readBundle(t, buf.Bytes())

	for _, want := range []string{"meta.json", "metrics.prom", "metrics.json", "events.json", "requests.json", "goroutines.txt", "heap.pprof"} {
		if _, ok := files[want]; !ok {
			t.Errorf("bundle missing %s (has %v)", want, keys(files))
		}
	}

	var meta map[string]any
	if err := json.Unmarshal(files["meta.json"], &meta); err != nil {
		t.Fatalf("meta.json: %v", err)
	}
	info, _ := meta["info"].(map[string]any)
	if info["binary"] != "test" {
		t.Fatalf("meta info = %v", meta["info"])
	}

	if !strings.Contains(string(files["metrics.prom"]), "checks_total 3") {
		t.Fatalf("metrics.prom missing counter:\n%s", files["metrics.prom"])
	}

	var evs []map[string]any
	if err := json.Unmarshal(files["events.json"], &evs); err != nil {
		t.Fatalf("events.json: %v", err)
	}
	if len(evs) != 1 || evs[0]["msg"] != "check served" || evs[0]["request_id"] != "bundle-req" {
		t.Fatalf("events.json = %v", evs)
	}

	var st TrackerState
	if err := json.Unmarshal(files["requests.json"], &st); err != nil {
		t.Fatalf("requests.json: %v", err)
	}
	if len(st.Recent) != 1 || st.Recent[0].RequestID != "bundle-req" {
		t.Fatalf("requests.json recent = %+v", st.Recent)
	}

	if !strings.Contains(string(files["goroutines.txt"]), "goroutine") {
		t.Fatal("goroutines.txt does not look like a goroutine dump")
	}
}

func TestWriteBundlePartialDiagnostics(t *testing.T) {
	// Nil pillars are omitted, not fatal.
	d := &Diagnostics{}
	var buf bytes.Buffer
	if err := d.WriteBundle(&buf); err != nil {
		t.Fatal(err)
	}
	files := readBundle(t, buf.Bytes())
	if _, ok := files["meta.json"]; !ok {
		t.Fatal("bundle missing meta.json")
	}
	for _, absent := range []string{"metrics.prom", "events.json", "requests.json", "trace.json"} {
		if _, ok := files[absent]; ok {
			t.Errorf("bundle has %s despite nil source", absent)
		}
	}
}

func keys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("c_total")
	c.Add(5)
	c.Inc()
	c.Add(-3) // counters only go up; negative deltas are dropped
	if got := c.Value(); got != 6 {
		t.Errorf("counter = %d, want 6", got)
	}
	if r.Counter("c_total") != c {
		t.Error("Counter is not get-or-create")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}
	if r.CounterValue("c_total") != 6 || r.GaugeValue("g") != 1.5 {
		t.Error("by-name reads disagree with handles")
	}
	if r.CounterValue("absent") != 0 || r.GaugeValue("absent") != 0 {
		t.Error("absent metrics should read zero")
	}
}

func TestNilRegistryAndHandlesAreNoops(t *testing.T) {
	var r *Registry
	// Every call on the nil registry and its nil handles must be safe.
	r.Counter("x").Inc()
	r.Counter("x").Add(3)
	r.Gauge("y").Set(1)
	r.Gauge("y").Add(1)
	r.Histogram("z", DurationBuckets).Observe(1)
	r.Histogram("z", DurationBuckets).ObserveDuration(time.Second)
	if r.Counter("x").Value() != 0 || r.Gauge("y").Value() != 0 {
		t.Error("nil handles should read zero")
	}
	if h := r.Histogram("z", nil); h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram should read zero")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("nil registry snapshot should be empty")
	}
}

// TestConcurrentRegistry hammers one registry from many goroutines —
// creation races, increment races, snapshot races — and checks the
// totals. Run under -race (make ci does).
func TestConcurrentRegistry(t *testing.T) {
	r := New()
	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("shared_total").Inc()
				r.Gauge("shared_gauge").Add(1)
				r.Histogram("shared_hist", []float64{0.5}).Observe(0.25)
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.CounterValue("shared_total"); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.GaugeValue("shared_gauge"); got != goroutines*perG {
		t.Errorf("gauge = %g, want %d", got, goroutines*perG)
	}
	h := r.Histogram("shared_hist", nil)
	if h.Count() != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
	if want := float64(goroutines*perG) * 0.25; h.Sum() != want {
		t.Errorf("histogram sum = %g, want %g", h.Sum(), want)
	}
}

// TestHistogramBucketBoundaries pins the "le" convention: a value equal
// to an upper bound lands in that bucket, a hair above goes to the next,
// and values above every bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := New()
	h := r.Histogram("h", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1.0, 1.0001, 2.0, 4.9, 5.0, 5.1, 100} {
		h.Observe(v)
	}
	snap := h.snapshot("h")
	// buckets: le=1 {0.5, 1.0}; le=2 {1.0001, 2.0}; le=5 {4.9, 5.0}; +Inf {5.1, 100}
	want := []uint64{2, 2, 2, 2}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if snap.Count != 8 {
		t.Errorf("count = %d, want 8", snap.Count)
	}
	if want := 0.5 + 1 + 1.0001 + 2 + 4.9 + 5 + 5.1 + 100; snap.Sum != want {
		t.Errorf("sum = %g, want %g", snap.Sum, want)
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted bounds should panic at creation")
		}
	}()
	New().Histogram("bad", []float64{2, 1})
}

func TestSnapshotSortedByName(t *testing.T) {
	r := New()
	r.Counter("zzz").Inc()
	r.Counter("aaa").Inc()
	r.Gauge("mmm").Set(1)
	r.Gauge("bbb").Set(2)
	s := r.Snapshot()
	if s.Counters[0].Name != "aaa" || s.Counters[1].Name != "zzz" {
		t.Errorf("counters not sorted: %+v", s.Counters)
	}
	if s.Gauges[0].Name != "bbb" || s.Gauges[1].Name != "mmm" {
		t.Errorf("gauges not sorted: %+v", s.Gauges)
	}
}

package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock returns a deterministic, strictly advancing clock for
// golden tests.
func fixedClock() func() time.Time {
	base := time.Date(2016, 8, 10, 12, 0, 0, 0, time.UTC) // the paper's scan era
	n := 0
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	ctx := context.Background()
	// None of these may panic.
	l.Emit(ctx, slog.LevelInfo, "msg")
	l.Debug(ctx, "msg")
	l.Info(ctx, "msg")
	l.Warn(ctx, "msg")
	l.Error(ctx, "msg")
	if evs := l.Events(); evs != nil {
		t.Fatalf("nil EventLog Events() = %v, want nil", evs)
	}
	if evs := l.EventsFilter(slog.LevelDebug, "", 0); len(evs) != 0 {
		t.Fatalf("nil EventLog EventsFilter() = %v, want empty", evs)
	}
	logger := l.Logger()
	if logger == nil {
		t.Fatal("nil EventLog Logger() = nil, want discard logger")
	}
	logger.Info("dropped on the floor", "k", "v")
}

func TestEventLogBasic(t *testing.T) {
	l := NewEventLog(EventConfig{Clock: fixedClock()})
	ctx := context.Background()
	l.Info(ctx, "first", slog.String("k", "v"))
	l.Warn(ctx, "second", slog.Int("n", 7))

	evs := l.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Msg != "first" || evs[1].Msg != "second" {
		t.Fatalf("event order wrong: %q then %q", evs[0].Msg, evs[1].Msg)
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("sequence numbers %d, %d; want 1, 2", evs[0].Seq, evs[1].Seq)
	}
	if got := evs[0].Attr("k"); got != "v" {
		t.Fatalf("Attr(k) = %q, want v", got)
	}
	if got := evs[0].Attr("missing"); got != "" {
		t.Fatalf("Attr(missing) = %q, want empty", got)
	}
}

func TestEventLogLevelFloor(t *testing.T) {
	l := NewEventLog(EventConfig{Level: slog.LevelWarn, Clock: fixedClock()})
	ctx := context.Background()
	l.Debug(ctx, "dropped")
	l.Info(ctx, "dropped too")
	l.Warn(ctx, "kept")
	l.Error(ctx, "kept too")
	evs := l.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2 (floor warn)", len(evs))
	}
	if evs[0].Msg != "kept" || evs[1].Msg != "kept too" {
		t.Fatalf("wrong events survived the floor: %+v", evs)
	}
}

func TestEventLogRequestIDFromContext(t *testing.T) {
	l := NewEventLog(EventConfig{Clock: fixedClock()})
	ctx := ContextWithRequestID(context.Background(), "req-42")
	l.Info(ctx, "tagged")
	l.Info(context.Background(), "untagged")

	evs := l.Events()
	if got := evs[0].Attr("request_id"); got != "req-42" {
		t.Fatalf("request_id = %q, want req-42", got)
	}
	if got := evs[1].Attr("request_id"); got != "" {
		t.Fatalf("untagged event has request_id %q", got)
	}

	// EventsFilter by request ID.
	filtered := l.EventsFilter(slog.LevelDebug, "req-42", 0)
	if len(filtered) != 1 || filtered[0].Msg != "tagged" {
		t.Fatalf("EventsFilter(request_id) = %+v, want the tagged event only", filtered)
	}
}

func TestEventLogRingWraparound(t *testing.T) {
	// Size below the 16 floor is clamped up to 16.
	l := NewEventLog(EventConfig{Size: 1, Clock: fixedClock()})
	ctx := context.Background()
	const total = 100
	for i := 0; i < total; i++ {
		l.Info(ctx, fmt.Sprintf("event-%d", i))
	}
	evs := l.Events()
	if len(evs) != 16 {
		t.Fatalf("ring holds %d events, want 16 (clamped size)", len(evs))
	}
	// The window must be the newest 16, in strictly increasing Seq order.
	for i, ev := range evs {
		wantSeq := uint64(total - 16 + i + 1)
		if ev.Seq != wantSeq {
			t.Fatalf("evs[%d].Seq = %d, want %d", i, ev.Seq, wantSeq)
		}
		wantMsg := fmt.Sprintf("event-%d", total-16+i)
		if ev.Msg != wantMsg {
			t.Fatalf("evs[%d].Msg = %q, want %q", i, ev.Msg, wantMsg)
		}
	}
}

func TestEventLogConcurrentEmittersAndReaders(t *testing.T) {
	// Run with -race: emitters race each other across the wraparound
	// while readers snapshot continuously. The invariant is that every
	// snapshot is ordered by Seq with no duplicates.
	l := NewEventLog(EventConfig{Size: 64})
	ctx := context.Background()
	const writers = 8
	const perWriter = 500

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				evs := l.Events()
				for i := 1; i < len(evs); i++ {
					if evs[i].Seq <= evs[i-1].Seq {
						t.Errorf("snapshot out of order: seq %d then %d", evs[i-1].Seq, evs[i].Seq)
						return
					}
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				l.Info(ctx, "concurrent", slog.Int("writer", w), slog.Int("i", i))
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	evs := l.Events()
	if len(evs) != 64 {
		t.Fatalf("final window %d events, want 64", len(evs))
	}
	if last := evs[len(evs)-1].Seq; last != writers*perWriter {
		t.Fatalf("last Seq = %d, want %d", last, writers*perWriter)
	}
}

func TestEventLogTee(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(EventConfig{
		Tee:       &buf,
		TeeFormat: "json",
		TeeLevel:  slog.LevelWarn,
		Clock:     fixedClock(),
	})
	ctx := context.Background()
	l.Info(ctx, "below tee floor")
	l.Warn(ctx, "teed", slog.String("k", "v"))

	// Both events recorded...
	if evs := l.Events(); len(evs) != 2 {
		t.Fatalf("recorded %d events, want 2", len(evs))
	}
	// ...but only the warn reached the tee.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("tee got %d lines, want 1: %q", len(lines), buf.String())
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &doc); err != nil {
		t.Fatalf("tee line is not JSON: %v", err)
	}
	if doc["msg"] != "teed" || doc["k"] != "v" {
		t.Fatalf("tee JSON = %v", doc)
	}
}

func TestEventLogLoggerAdapter(t *testing.T) {
	l := NewEventLog(EventConfig{Clock: fixedClock()})
	logger := l.Logger().With("base", "x").WithGroup("shard")
	logger.Info("via slog", "id", 3)

	evs := l.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	if evs[0].Attr("base") != "x" {
		t.Fatalf("With attr lost: %+v", evs[0].Attrs)
	}
	if evs[0].Attr("shard.id") != "3" {
		t.Fatalf("group-qualified attr = %q, want 3", evs[0].Attr("shard.id"))
	}
}

func TestWriteEventJSONGolden(t *testing.T) {
	l := NewEventLog(EventConfig{Clock: fixedClock()})
	ctx := ContextWithRequestID(context.Background(), "abcd1234-000001")
	l.Info(ctx, "check served",
		slog.String("verdict", "factored"),
		slog.Int("shard", 3),
		slog.Bool("cached", false),
		slog.Duration("latency", 1500*time.Microsecond),
	)

	var buf bytes.Buffer
	if err := WriteEventJSON(&buf, l.Events()[0]); err != nil {
		t.Fatal(err)
	}
	want := `{"seq":1,"time":"2016-08-10T12:00:00.001Z","level":"INFO","msg":"check served",` +
		`"verdict":"factored","shard":3,"cached":false,"latency":"1.5ms","request_id":"abcd1234-000001"}`
	if got := buf.String(); got != want {
		t.Fatalf("golden mismatch:\n got %s\nwant %s", got, want)
	}

	// The array form must be valid JSON end to end.
	buf.Reset()
	l.Warn(ctx, "check shed", slog.String("cause", "queue"))
	if err := WriteEventsJSON(&buf, l.Events()); err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Fatalf("WriteEventsJSON output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(arr) != 2 {
		t.Fatalf("array has %d events, want 2", len(arr))
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug":   slog.LevelDebug,
		"info":    slog.LevelInfo,
		"":        slog.LevelInfo,
		"warn":    slog.LevelWarn,
		"warning": slog.LevelWarn,
		"error":   slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) accepted, want error")
	}
}

// BenchmarkEventEmit measures the flight-recorder hot path: one Info
// with two attrs into the ring, no tee. The budget is ~200ns/event so
// the recorder can sit on the serving path; the dominant term is the
// time.Now call, so slow-clock VMs read higher.
func BenchmarkEventEmit(b *testing.B) {
	l := NewEventLog(EventConfig{Size: 1024})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Info(ctx, "check served", slog.String("verdict", "clean"), slog.Int("shard", 1))
	}
}

// BenchmarkNilEventEmit measures the disabled path: a nil *EventLog
// must cost roughly one branch.
func BenchmarkNilEventEmit(b *testing.B) {
	var l *EventLog
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Info(ctx, "check served", slog.String("verdict", "clean"), slog.Int("shard", 1))
	}
}

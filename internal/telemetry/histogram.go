package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// DurationBuckets is the default bucket layout for latency histograms:
// 100µs to ~100s in roughly 1-2.5-5 decades, matching the spread between
// a loopback dial and a full-scale pipeline stage.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5,
	10, 25, 50, 100,
}

// Histogram counts observations into fixed buckets with atomic
// operations; the bucket layout is immutable after creation. Bounds are
// inclusive upper bounds (an observation v lands in the first bucket
// with v <= bound, the Prometheus "le" convention); values above every
// bound land in the implicit +Inf bucket.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly increasing")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value (nil-safe).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (~20) and the common latency
	// values land early, so this beats binary search in practice and
	// keeps the hot path branch-predictable.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds (nil-safe).
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the number of observations (nil-safe).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (nil-safe).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

func (h *Histogram) snapshot(name string) HistogramSnapshot {
	s := HistogramSnapshot{
		Name:   name,
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.Sum(),
		Count:  h.Count(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

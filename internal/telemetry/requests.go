package telemetry

import (
	"sort"
	"sync"
	"time"
)

// RequestTracker keeps the live request ledger behind /debug/requests,
// in the spirit of golang.org/x/net/trace: every tracked request is
// visible while in flight, the newest finished ones are kept in a
// bounded ring, and the slowest ones are kept in a bounded leaderboard
// so a latency spike is still explainable after the ring has churned.
//
// A nil *RequestTracker is valid: Start returns a nil *ActiveRequest
// whose methods are no-ops, so tracking disabled costs one branch.
type RequestTracker struct {
	mu         sync.Mutex
	nextSeq    uint64
	active     map[uint64]*ActiveRequest
	recent     []RequestRecord // ring, position recentPos
	recentPos  int
	recentFull bool
	slowest    []RequestRecord // sorted by Latency descending
	maxSlowest int
	clock      func() time.Time
}

// RequestRecord is one finished (or in-flight) request as rendered by
// /debug/requests and the debug bundle.
type RequestRecord struct {
	Seq       uint64         `json:"seq"`
	Kind      string         `json:"kind"`
	RequestID string         `json:"request_id"`
	Start     time.Time      `json:"start"`
	LatencyMS float64        `json:"latency_ms"`
	Outcome   string         `json:"outcome,omitempty"`
	Fields    map[string]any `json:"fields,omitempty"`
}

// NewRequestTracker builds a tracker keeping the last `recent` finished
// requests (default 128) and the `slowest` slowest (default 32).
func NewRequestTracker(recent, slowest int) *RequestTracker {
	if recent <= 0 {
		recent = 128
	}
	if slowest <= 0 {
		slowest = 32
	}
	return &RequestTracker{
		active:     make(map[uint64]*ActiveRequest),
		recent:     make([]RequestRecord, recent),
		maxSlowest: slowest,
		clock:      time.Now,
	}
}

// ActiveRequest is one in-flight tracked request. Finish it exactly
// once. A nil *ActiveRequest is a valid no-op handle.
type ActiveRequest struct {
	t   *RequestTracker
	rec RequestRecord
}

// Start begins tracking one request of the given kind ("check",
// "ingest") under its correlation ID (nil-safe).
func (t *RequestTracker) Start(kind, requestID string) *ActiveRequest {
	if t == nil {
		return nil
	}
	a := &ActiveRequest{t: t}
	t.mu.Lock()
	t.nextSeq++
	a.rec = RequestRecord{Seq: t.nextSeq, Kind: kind, RequestID: requestID, Start: t.clock()}
	t.active[a.rec.Seq] = a
	t.mu.Unlock()
	return a
}

// Set annotates the request with one key/value shown in /debug/requests
// (verdict, shard, cache hit, ...) (nil-safe).
func (a *ActiveRequest) Set(key string, v any) {
	if a == nil {
		return
	}
	a.t.mu.Lock()
	if a.rec.Fields == nil {
		a.rec.Fields = make(map[string]any, 4)
	}
	a.rec.Fields[key] = v
	a.t.mu.Unlock()
}

// Finish completes the request with an outcome ("factored", "clean",
// "shed:queue", "error", ...), moving it from the active set into the
// recent ring and, if it qualifies, the slowest leaderboard (nil-safe).
func (a *ActiveRequest) Finish(outcome string) {
	if a == nil {
		return
	}
	t := a.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.active[a.rec.Seq]; !ok {
		return // double Finish
	}
	delete(t.active, a.rec.Seq)
	a.rec.Outcome = outcome
	a.rec.LatencyMS = float64(t.clock().Sub(a.rec.Start)) / float64(time.Millisecond)
	t.recent[t.recentPos] = a.rec
	t.recentPos++
	if t.recentPos == len(t.recent) {
		t.recentPos, t.recentFull = 0, true
	}
	// Insert into the slowest leaderboard if it beats the current tail.
	if len(t.slowest) < t.maxSlowest || a.rec.LatencyMS > t.slowest[len(t.slowest)-1].LatencyMS {
		t.slowest = append(t.slowest, a.rec)
		sort.Slice(t.slowest, func(i, j int) bool { return t.slowest[i].LatencyMS > t.slowest[j].LatencyMS })
		if len(t.slowest) > t.maxSlowest {
			t.slowest = t.slowest[:t.maxSlowest]
		}
	}
}

// TrackerState is the /debug/requests document.
type TrackerState struct {
	// Active lists in-flight requests, oldest first; LatencyMS is the
	// age so far and Outcome is empty.
	Active []RequestRecord `json:"active"`
	// Recent lists the newest finished requests, newest first.
	Recent []RequestRecord `json:"recent"`
	// Slowest lists the slowest finished requests, slowest first.
	Slowest []RequestRecord `json:"slowest"`
}

// State snapshots the tracker (nil-safe).
func (t *RequestTracker) State() TrackerState {
	var st TrackerState
	if t == nil {
		return st
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clock()
	for _, a := range t.active {
		rec := a.rec
		rec.LatencyMS = float64(now.Sub(rec.Start)) / float64(time.Millisecond)
		st.Active = append(st.Active, rec)
	}
	sort.Slice(st.Active, func(i, j int) bool { return st.Active[i].Seq < st.Active[j].Seq })
	n := t.recentPos
	if t.recentFull {
		n = len(t.recent)
	}
	for i := 0; i < n; i++ {
		// Walk backwards from the write position: newest first.
		idx := (t.recentPos - 1 - i + len(t.recent)) % len(t.recent)
		st.Recent = append(st.Recent, t.recent[idx])
	}
	st.Slowest = append(st.Slowest, t.slowest...)
	return st
}

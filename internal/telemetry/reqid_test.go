package telemetry

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRequestIDContext(t *testing.T) {
	if got := RequestIDFrom(context.Background()); got != "" {
		t.Fatalf("empty context yields %q", got)
	}
	ctx := ContextWithRequestID(context.Background(), "abc")
	if got := RequestIDFrom(ctx); got != "abc" {
		t.Fatalf("round trip = %q, want abc", got)
	}
	// Empty ID is not stored.
	if ctx2 := ContextWithRequestID(context.Background(), ""); RequestIDFrom(ctx2) != "" {
		t.Fatal("empty ID was stored")
	}
}

func TestMintRequestIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := MintRequestID()
		if !validRequestID(id) {
			t.Fatalf("minted ID %q is not valid by our own rules", id)
		}
		if seen[id] {
			t.Fatalf("duplicate minted ID %q", id)
		}
		seen[id] = true
	}
}

func TestValidRequestID(t *testing.T) {
	valid := []string{"a", "abc-123", "trace.id:0", "A_Z", strings.Repeat("x", 64)}
	for _, s := range valid {
		if !validRequestID(s) {
			t.Errorf("validRequestID(%q) = false, want true", s)
		}
	}
	invalid := []string{"", strings.Repeat("x", 65), "has space", "semi;colon", "new\nline", "ütf8"}
	for _, s := range invalid {
		if validRequestID(s) {
			t.Errorf("validRequestID(%q) = true, want false", s)
		}
	}
}

func TestHTTPRequestID(t *testing.T) {
	// Valid inbound header wins.
	r := httptest.NewRequest("POST", "/v1/check", nil)
	r.Header.Set("X-Request-Id", "client-id-1")
	id, inbound := HTTPRequestID(r)
	if id != "client-id-1" || !inbound {
		t.Fatalf("got %q inbound=%v, want client-id-1 inbound=true", id, inbound)
	}

	// Hostile header is replaced by a minted ID.
	r = httptest.NewRequest("POST", "/v1/check", nil)
	r.Header.Set("X-Request-Id", "evil\ninjection")
	id, inbound = HTTPRequestID(r)
	if inbound || !validRequestID(id) {
		t.Fatalf("hostile header: got %q inbound=%v, want minted", id, inbound)
	}

	// traceparent trace-id is accepted when no X-Request-Id.
	r = httptest.NewRequest("POST", "/v1/check", nil)
	r.Header.Set("traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	id, inbound = HTTPRequestID(r)
	if id != "4bf92f3577b34da6a3ce929d0e0e4736" || !inbound {
		t.Fatalf("traceparent: got %q inbound=%v", id, inbound)
	}

	// Nothing inbound: minted.
	r = httptest.NewRequest("POST", "/v1/check", nil)
	id, inbound = HTTPRequestID(r)
	if inbound || id == "" {
		t.Fatalf("bare request: got %q inbound=%v, want minted", id, inbound)
	}
}

func TestTraceparentTraceID(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", "4bf92f3577b34da6a3ce929d0e0e4736"},
		{"", ""},
		{"garbage", ""},
		// All-zero trace-id is invalid per W3C.
		{"00-00000000000000000000000000000000-00f067aa0ba902b7-01", ""},
		// Uppercase hex is invalid per W3C.
		{"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", ""},
		// Misplaced separators.
		{"004bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x", ""},
	}
	for _, c := range cases {
		if got := traceparentTraceID(c.in); got != c.want {
			t.Errorf("traceparentTraceID(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestContextWithEvents(t *testing.T) {
	if got := EventsFrom(context.Background()); got != nil {
		t.Fatalf("empty context yields %v", got)
	}
	l := NewEventLog(EventConfig{})
	ctx := ContextWithEvents(context.Background(), l)
	if EventsFrom(ctx) != l {
		t.Fatal("event log did not round-trip through context")
	}
	// nil log is not stored; EventsFrom still returns a usable nil.
	ctx = ContextWithEvents(context.Background(), nil)
	EventsFrom(ctx).Info(ctx, "no-op") // must not panic
}

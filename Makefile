# Development targets for the weakkeys reproduction.

GO ?= go

.PHONY: ci build vet test race bench bench-pipeline

# ci is the full gate: compile everything, vet, and run the test suite
# under the race detector.
ci: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# bench-pipeline measures the stage-wrapping overhead of internal/pipeline
# against direct calls (expected: well under 1%).
bench-pipeline:
	$(GO) test -run xxx -bench 'BenchmarkPipelineOverhead' .

# Development targets for the weakkeys reproduction.

GO ?= go

.PHONY: ci build vet test race bench bench-pipeline smoke bench-telemetry

# ci is the full gate: compile everything, vet, run the test suite under
# the race detector, smoke-test the live telemetry path end to end, and
# guard the instrumentation hot-path cost.
ci: build vet race smoke bench-telemetry

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# bench-pipeline measures the stage-wrapping overhead of internal/pipeline
# against direct calls (expected: well under 1%).
bench-pipeline:
	$(GO) test -run xxx -bench 'BenchmarkPipelineOverhead' .

# smoke runs weakkeys at small scale with -metrics, -trace and -listen,
# scrapes /metrics once and asserts it is populated across packages.
smoke:
	sh ./scripts/smoke.sh

# bench-telemetry guards the instrumentation hot path: counter Add and
# histogram Observe must stay in the low nanoseconds (fixed iteration
# count so the guard is fast enough for ci).
bench-telemetry:
	$(GO) test -run xxx -bench 'BenchmarkCounterAdd$$|BenchmarkHistogramObserve$$|BenchmarkNilCounterAdd$$' -benchtime 200000x ./internal/telemetry

# Development targets for the weakkeys reproduction.

GO ?= go

.PHONY: ci build vet test race bench bench-pipeline smoke chaos-smoke keyserver-smoke cluster-smoke cluster-chaos scan-smoke anomaly-smoke bench-telemetry bench-keyserver bench-ingest bench-gcd bench-cluster bench-scan bench-anomaly

# ci is the full gate: compile everything, vet, run the test suite under
# the race detector (which includes every fault-injection test), smoke-
# test the live telemetry path, the seeded-chaos recovery path, the
# online key-check service, the replicated cluster (routing, sync and a
# replica-kill failover), the scan->ingest pipeline and the anomalous-
# key verdict classes end to end, guard the instrumentation hot-path
# cost, and hold the batch-GCD kernel, the scan engine and the anomaly
# probes to their throughput and exactness floors.
ci: build vet race smoke chaos-smoke keyserver-smoke cluster-smoke cluster-chaos scan-smoke anomaly-smoke bench-telemetry bench-gcd bench-scan bench-anomaly

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-pipeline measures the stage-wrapping overhead of internal/pipeline
# against direct calls (expected: well under 1%).
bench-pipeline:
	$(GO) test -run xxx -bench 'BenchmarkPipelineOverhead' .

# smoke runs weakkeys at small scale with -metrics, -trace and -listen,
# scrapes /metrics once and asserts it is populated across packages.
smoke:
	sh ./scripts/smoke.sh

# chaos-smoke runs both binaries under seeded fault injection: the
# scanner must retry a faulty fleet back to a complete harvest, and the
# distributed GCD must survive injected node crashes with output
# identical to the fault-free run (counters checked via /metrics).
chaos-smoke:
	sh ./scripts/chaos-smoke.sh

# keyserver-smoke starts keyserverd on a small simulated study and
# checks one known-weak and one known-clean corpus key end to end over
# HTTP, plus a malformed submission (400), the /metrics scrape, request
# correlation through /debug/events and /debug/requests, and the
# /debug/bundle gzip-tar round trip.
keyserver-smoke:
	sh ./scripts/keyserver-smoke.sh

# cluster-smoke starts three partial-snapshot keyserverd replicas
# behind keyrouter and checks routed verdicts (weak/clean/novel), the
# scatter-gather coverage, a routed ingest, journal-pull sync
# propagation to every shard owner, and a non-degraded failover after
# killing one replica.
cluster-smoke:
	sh ./scripts/cluster-smoke.sh

# cluster-chaos drives keyload through keyrouter while one of three
# replicas is SIGKILLed mid-run: every check must still be answered
# (zero lost verdicts) and the router telemetry must show the failover.
cluster-chaos:
	sh ./scripts/cluster-chaos.sh

# bench-cluster benchmarks keyload through keyrouter against three
# replicas and writes BENCH_cluster.json (floor: 1000 checks/sec
# aggregate through the routed scatter-gather path).
bench-cluster:
	sh ./scripts/bench-cluster.sh

# bench-keyserver drives keyload against a local keyserverd and writes
# BENCH_keyserver.json (p50/p99 latency, checks/sec; floor 1000/sec).
bench-keyserver:
	sh ./scripts/bench-keyserver.sh

# bench-ingest times Snapshot.Ingest of a 5% delta against the full
# batch-GCD + rebuild pipeline at ~20k moduli and writes
# BENCH_ingest.json (floor: 5x speedup for the incremental path).
bench-ingest:
	sh ./scripts/bench-ingest.sh

# scan-smoke runs zscand over a chaos-faulted simulated fleet against a
# live keyserverd: the re-sweep recovers every fault, delta checkpoints
# land on disk, and the continuous-ingest bridge flips a weak fleet
# modulus from clean/unknown to factored with no server restart.
scan-smoke:
	sh ./scripts/scan-smoke.sh

# bench-gcd runs the batch-GCD pipeline on kernel engines of increasing
# width and writes BENCH_gcd.json (floors: >=2x over serial on >=4
# cores; arena recycling must allocate strictly less than no-arena).
bench-gcd:
	sh ./scripts/bench-gcd.sh

# bench-scan benchmarks the zscan engine in process and writes
# BENCH_scan.json (floors: >= 50000 probes/sec single-process; the
# 2-shard audit and concurrent shard sweep must be exact — zero
# overlap, zero omission, every device harvested once).
bench-scan:
	sh ./scripts/bench-scan.sh

# bench-telemetry guards the instrumentation hot path: counter Add and
# histogram Observe must stay in the low nanoseconds, event Emit within
# its ~200ns flight-recorder budget, and the disabled (nil) paths at
# roughly one branch (fixed iteration count so the guard is fast enough
# for ci).
bench-telemetry:
	$(GO) test -run xxx -bench 'BenchmarkCounterAdd$$|BenchmarkHistogramObserve$$|BenchmarkNilCounterAdd$$|BenchmarkEventEmit$$|BenchmarkNilEventEmit$$' -benchtime 200000x ./internal/telemetry

# anomaly-smoke starts keyserverd with the anomalous device cohorts and
# asserts every beyond-GCD verdict class (shared_modulus, fermat_weak,
# small_factor, unsafe_exponent) over the HTTP API.
anomaly-smoke:
	sh ./scripts/anomaly-smoke.sh

# bench-anomaly sweeps the per-modulus anomaly probes over a corpus with
# planted flaws and writes BENCH_anomaly.json, enforcing full recall,
# zero false hits and the 100 probes/sec floor.
bench-anomaly:
	sh ./scripts/bench-anomaly.sh
